package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/abft"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/prng"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// Runner executes a Campaign with the full production runtime:
// cancellation via context, a typed live event stream, periodic
// checkpointing with bit-identical resume, and a telemetry registry.
//
//	r := core.NewRunner(c, core.WithCheckpoint("run.ckpt"))
//	for ev := range r.Stream(ctx) { ... }
//
// Resume soundness: trial t derives all of its randomness from Split(t)
// of the campaign seed and runs against the (deterministic) fault-free
// baseline, so a trial's outcome is a pure function of (campaign
// fingerprint, t). Skipping checkpointed indices and running the rest
// therefore yields a Result bit-identical to an uninterrupted run.
type Runner struct {
	c Campaign

	ckptPath  string
	ckptEvery int
	resume    *Checkpoint
	tel       *Telemetry
	progEvery int

	only     []int
	baseline *Baseline

	traceEvery int
	traceSink  func(trace.Record) error
	traceTol   float64

	spanObs func(index int, spans []trace.Span, busy time.Duration)
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithCheckpoint makes the runner persist completed trials to path —
// every checkpoint interval, and finally when the campaign completes,
// errors, or is cancelled (the SIGINT path).
func WithCheckpoint(path string) RunnerOption {
	return func(r *Runner) { r.ckptPath = path }
}

// WithCheckpointEvery sets the number of completed trials between
// periodic checkpoint writes (default 64).
func WithCheckpointEvery(n int) RunnerOption {
	return func(r *Runner) { r.ckptEvery = n }
}

// WithResumeFrom seeds the runner with a previously saved checkpoint;
// its completed trial indices are skipped. The checkpoint fingerprint
// must match the campaign.
func WithResumeFrom(ck *Checkpoint) RunnerOption {
	return func(r *Runner) { r.resume = ck }
}

// WithTelemetry supplies an external telemetry registry so callers can
// snapshot it during or after the run.
func WithTelemetry(t *Telemetry) RunnerOption {
	return func(r *Runner) { r.tel = t }
}

// WithProgressEvery sets how many completed trials separate Progress
// events (default 1: one per trial).
func WithProgressEvery(n int) RunnerOption {
	return func(r *Runner) { r.progEvery = n }
}

// WithOnly restricts execution to the given trial indices — the
// lease-range mode the distributed fabric workers run in. Indices
// outside [0, Trials) are ignored; duplicates collapse. The Result is
// partial (only the selected trials are filled in), which is sound for
// consumers that merge TrialDone events by index: trial t's outcome is a
// pure function of (campaign fingerprint, t), so any partition of the
// index space unions to the bit-identical full Result.
func WithOnly(indices []int) RunnerOption {
	return func(r *Runner) {
		// make (not append) so an empty selection stays non-nil: it means
		// "run nothing", whereas nil means "run everything".
		r.only = make([]int, len(indices))
		copy(r.only, indices)
	}
}

// WithBaseline supplies a previously computed fault-free baseline,
// skipping the runner's own baseline evaluation. The baseline must come
// from an equivalent campaign on the same model value (in practice: a
// prior run's BaselineReady event — the fabric worker evaluates it once
// and reuses it across leases). A baseline captured without activation
// capture silently disables propagation probes for traced trials.
func WithBaseline(b *Baseline) RunnerOption {
	return func(r *Runner) { r.baseline = b }
}

// WithTrace enables propagation tracing: every n-th trial (n=1 traces
// all) runs with a probe that diffs its layer activations against the
// instance's clean baseline capture, and the resulting trace.Record is
// delivered to sink (may be nil — records still ride TrialDone events)
// from the collector goroutine, in completion order. A sink error stops
// the campaign.
//
// Tracing is observational: it never alters trial outcomes, and is
// deliberately excluded from the checkpoint fingerprint — a resumed
// campaign may change its tracing configuration freely. It is
// automatically disabled for multiple-choice suites and beam search,
// whose forked decode states have no per-position clean reference.
func WithTrace(n int, sink func(trace.Record) error) RunnerOption {
	return func(r *Runner) {
		r.traceEvery = n
		r.traceSink = sink
	}
}

// WithTraceTol overrides the relative-L2 divergence tolerance of the
// propagation probes (default trace.DefaultTol).
func WithTraceTol(tol float64) RunnerOption {
	return func(r *Runner) { r.traceTol = tol }
}

// WithSpanObserver delivers every completed trial's phase timing spans
// (the same prefill/decode/abft/classify breakdown the telemetry
// histograms aggregate) plus its wall-clock busy time to fn, from the
// collector goroutine in completion order. Observational by
// construction: the observer sees copies of timing data after the trial
// outcome is already sealed, so it cannot perturb results — the fleet
// observability plane (internal/obs) uses it to export per-trial spans
// without touching the hot path.
func WithSpanObserver(fn func(index int, spans []trace.Span, busy time.Duration)) RunnerOption {
	return func(r *Runner) { r.spanObs = fn }
}

// NewRunner wraps a Campaign in the streaming runtime. Campaign-level
// checkpoint settings (WithCheckpointPath / WithCheckpointInterval) seed
// the runner's defaults; RunnerOptions override them.
func NewRunner(c Campaign, opts ...RunnerOption) *Runner {
	r := &Runner{c: c, ckptPath: c.ckptPath, ckptEvery: c.ckptEvery, progEvery: 1}
	for _, opt := range opts {
		opt(r)
	}
	if r.tel == nil {
		r.tel = NewTelemetry()
	}
	if r.ckptEvery <= 0 {
		r.ckptEvery = 64
	}
	if r.progEvery <= 0 {
		r.progEvery = 1
	}
	return r
}

// Telemetry returns the runner's metrics registry.
func (r *Runner) Telemetry() *Telemetry { return r.tel }

// Run executes the campaign to completion, blocking without an event
// stream. Cancelling ctx stops the pool within one trial per worker and
// returns ctx.Err(); with a checkpoint configured, a final checkpoint
// is written before returning.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	return r.run(ctx, nil)
}

// Stream starts the campaign and returns its event channel. The stream
// must be drained until close (the terminal CampaignDone event carries
// the Result or error); abandoning it mid-stream blocks the runner.
func (r *Runner) Stream(ctx context.Context) <-chan Event {
	events := make(chan Event, 128)
	go func() {
		defer close(events)
		res, err := r.run(ctx, func(ev Event) { events <- ev })
		events <- CampaignDone{Result: res, Err: err}
	}()
	return events
}

// Resume loads the checkpoint at path, verifies it against the
// campaign, and runs the remaining trials. The merged Result is
// bit-identical to an uninterrupted run. Subsequent checkpoints are
// written back to the same path unless WithCheckpoint chose another.
func (r *Runner) Resume(ctx context.Context, path string) (*Result, error) {
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	r.resume = ck
	if r.ckptPath == "" {
		r.ckptPath = path
	}
	return r.Run(ctx)
}

// trialResult carries one worker's completed trial (or failure) to the
// collector.
type trialResult struct {
	index  int
	worker int
	trial  Trial
	rec    *trace.Record
	spans  []trace.Span // phase timings, only filled when an observer is set
	busy   time.Duration
	err    error
}

// run is the campaign runtime shared by Run and Stream. emit may be
// nil (blocking mode).
func (r *Runner) run(ctx context.Context, emit func(Event)) (*Result, error) {
	if emit == nil {
		emit = func(Event) {}
	}
	c := r.c
	if err := c.validate(); err != nil {
		return nil, err
	}
	gs, check := c.effective()

	// Validate the target filter once up front so configuration errors
	// surface before any work starts.
	if _, err := faults.NewSampler(c.Model, c.Filter); err != nil {
		return nil, err
	}
	if r.resume != nil {
		if err := r.resume.Matches(c); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Route ExtraHook installations through the telemetry counter; the
	// wrapper forwards values untouched, so mitigation behavior (and
	// golden equivalence) is unchanged.
	if c.ExtraHook != nil {
		orig := c.ExtraHook
		tel := r.tel
		c.ExtraHook = func() model.Hook {
			h := orig()
			return func(ref model.LayerRef, step int, out []float32) {
				tel.hookFired()
				h(ref, step, out)
			}
		}
	}

	// Tracing eligibility: probes need a per-position clean reference, so
	// multiple-choice scoring (positions restart per option) and beam
	// search (forked decode states) run untraced.
	traceOn := r.traceEvery > 0 &&
		c.Suite.Type != tasks.MultipleChoice && gs.NumBeams <= 1
	traceTol := r.traceTol
	if traceTol <= 0 {
		traceTol = trace.DefaultTol
	}

	baseline := r.baseline
	if baseline == nil {
		if c.ExtraHook != nil {
			c.Model.AddHook(c.ExtraHook())
		}
		var capMinPos func(inst *tasks.Instance) int
		if traceOn {
			// Transient computational faults strike only during decode, so
			// prompt-position activations are dead weight; a resident memory
			// fault corrupts the prefill too, so everything is captured.
			capMinPos = func(inst *tasks.Instance) int {
				if c.Fault.IsMemory() {
					return 0
				}
				return len(inst.Prompt)
			}
		}
		baseline = evalBaseline(c.Model, c.Suite, gs, check, capMinPos)
		if c.ExtraHook != nil {
			c.Model.ClearHooks()
		}
	}
	emit(BaselineReady{Baseline: baseline})

	res := &Result{Campaign: c, Baseline: baseline, Trials: make([]Trial, c.Trials)}
	completed := make([]bool, c.Trials)
	done := 0
	var restored []Trial
	if r.resume != nil {
		for i, t := range r.resume.Indices {
			if t < 0 || t >= c.Trials || completed[t] {
				continue
			}
			res.Trials[t] = r.resume.Trials[i]
			completed[t] = true
			done++
			restored = append(restored, r.resume.Trials[i])
		}
	}
	selected := func(int) bool { return true }
	if r.only != nil {
		sel := make([]bool, c.Trials)
		for _, t := range r.only {
			if t >= 0 && t < c.Trials {
				sel[t] = true
			}
		}
		selected = func(t int) bool { return sel[t] }
	}
	pending := make([]int, 0, c.Trials-done)
	for t := 0; t < c.Trials; t++ {
		if !completed[t] && selected(t) {
			pending = append(pending, t)
		}
	}

	batched := c.batchEligible(gs)
	batch := 1
	if batched {
		batch = c.BatchDecode
	}
	workers := 0
	threadsPer := 1
	if len(pending) > 0 {
		workers, threadsPer = poolShape(len(pending), c.Workers, batch, runtime.GOMAXPROCS(0))
	}
	r.tel.begin(c.Trials, workers)
	// Fold checkpointed trials into the cumulative counters so tallies
	// and fired rates survive a resume; the throughput rate still counts
	// only this run's executed trials.
	r.tel.restore(restored)

	if len(pending) == 0 {
		// Fully-resumed campaign: nothing to execute.
		emit(r.tel.progress(done, c.Trials))
		if r.ckptPath != "" {
			if err := r.checkpoint(res, completed); err != nil {
				return nil, err
			}
		}
		return res, ctx.Err()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	seedSrc := prng.New(c.Seed ^ 0xca3b417a)
	// The jobs channel is pre-filled and closed before workers start, so
	// a worker that stops early never strands a blocked producer.
	jobs := make(chan int, len(pending))
	for _, t := range pending {
		jobs <- t
	}
	close(jobs)

	results := make(chan trialResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Workers share the parent's weights copy-on-write: only a
			// memory-fault target is privatized (at Arm time), so per-worker
			// memory is the KV cache, not the model.
			wm := c.Model.CloneShared()
			if c.deepClones {
				wm = c.Model.Clone()
			}
			wm.SetThreads(threadsPer)
			sampler, err := faults.NewSampler(wm, c.Filter)
			if err != nil {
				results <- trialResult{index: -1, worker: worker, err: err}
				cancel()
				return
			}
			if batched {
				bw := &batchedWorker{
					c: c, r: r, worker: worker, wm: wm,
					sampler: sampler, seedSrc: seedSrc,
					base: baseline, gs: gs, check: check,
					traceOn: traceOn, traceTol: traceTol,
					results: results, cancel: cancel,
				}
				if c.ABFT != nil {
					bw.cache = abft.NewCache()
				}
				bw.run(runCtx, jobs)
				return
			}
			// The worker's ABFT detector: checksums of layers it has
			// protected are cached across its trials (Disarm restores the
			// weights, so the clean-weight sums stay valid).
			var checker *abft.Checker
			if c.ABFT != nil {
				checker = abft.New(abft.Config{Tol: c.ABFT.Tol, Policy: c.ABFT.Policy})
			}
			for t := range jobs {
				if runCtx.Err() != nil {
					return
				}
				instr := trialInstr{
					traced: traceOn && t%r.traceEvery == 0,
					tol:    traceTol,
				}
				sp := &spanTimes{}
				start := now()
				trial, rec, err := c.runTrial(wm, sampler, seedSrc.Split(uint64(t)), t, baseline, gs, check, checker, instr, sp)
				if err != nil {
					// First failure cancels the pool; the collector
					// surfaces it through the event stream immediately.
					results <- trialResult{index: t, worker: worker, err: err}
					cancel()
					return
				}
				r.tel.observeSpans(sp)
				tr := trialResult{index: t, worker: worker, trial: trial, rec: rec, busy: since(start)}
				if r.spanObs != nil {
					tr.spans = sp.spans()
				}
				results <- tr
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collector: the single writer of res.Trials, telemetry, events, and
	// checkpoints.
	var firstErr error
	sinceCkpt := 0
	for tr := range results {
		if tr.err != nil {
			if firstErr == nil {
				firstErr = tr.err
			}
			continue
		}
		res.Trials[tr.index] = tr.trial
		completed[tr.index] = true
		done++
		sinceCkpt++
		r.tel.record(tr.worker, tr.trial, tr.busy)
		if r.spanObs != nil {
			r.spanObs(tr.index, tr.spans, tr.busy)
		}
		if tr.rec != nil {
			r.tel.tracedTrial()
			if r.traceSink != nil {
				if err := r.traceSink(*tr.rec); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					cancel()
				}
			}
		}
		emit(TrialDone{Index: tr.index, Worker: tr.worker, Trial: tr.trial, Trace: tr.rec})
		if done%r.progEvery == 0 || done == c.Trials {
			emit(r.tel.progress(done, c.Trials))
		}
		if r.ckptPath != "" && sinceCkpt >= r.ckptEvery {
			if err := r.checkpoint(res, completed); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				cancel()
			}
			sinceCkpt = 0
		}
	}

	// Final checkpoint: on completion, on error, and on cancellation
	// (the SIGINT path), so no completed work is ever lost.
	if r.ckptPath != "" {
		if err := r.checkpoint(res, completed); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// poolShape sizes the worker pool and each worker's matmul thread
// share from the actual in-flight shape. Serially, one worker carries
// one trial, so the pool is capped by the pending count; under batched
// decode a worker carries up to batch trials, so the cap is
// ceil(pending/batch) — spawning more would leave workers whose batch
// could never fill, each still claiming a core share. The threads-per-
// worker split then divides the machine among the workers that actually
// exist, so a small batched pool reclaims the cores a serial pool of
// the same campaign would have fragmented.
func poolShape(pending, requested, batch, procs int) (workers, threads int) {
	workers = requested
	if workers <= 0 {
		workers = procs
	}
	if batch > 1 {
		if need := (pending + batch - 1) / batch; workers > need {
			workers = need
		}
	}
	if workers > pending {
		workers = pending
	}
	if workers < 1 {
		workers = 1
	}
	threads = procs / workers
	if threads < 1 {
		threads = 1
	}
	return workers, threads
}

// checkpoint persists the completed trials.
func (r *Runner) checkpoint(res *Result, completed []bool) error {
	ck := &Checkpoint{Fingerprint: r.c.Fingerprint()}
	for t, ok := range completed {
		if ok {
			ck.Indices = append(ck.Indices, t)
			ck.Trials = append(ck.Trials, res.Trials[t])
		}
	}
	return ck.Save(r.ckptPath)
}
