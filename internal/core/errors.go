package core

import (
	"errors"
	"fmt"

	"repro/internal/faults"
)

// Sentinel configuration errors. Campaign validation wraps these with
// detail, so callers test with errors.Is.
var (
	// ErrNoTrials reports a campaign configured with Trials <= 0.
	ErrNoTrials = errors.New("core: campaign needs Trials > 0")
	// ErrEmptySuite reports a task suite with no instances.
	ErrEmptySuite = errors.New("core: task suite has no instances")
	// ErrContextTooSmall reports a model whose context window cannot fit
	// the suite's longest prompt plus generation budget.
	ErrContextTooSmall = errors.New("core: model context window smaller than the suite needs")
	// ErrCheckpointMismatch reports a resume checkpoint whose fingerprint
	// does not match the campaign being resumed.
	ErrCheckpointMismatch = errors.New("core: checkpoint does not match this campaign")
)

// TrialError locates a worker failure at the trial that caused it: the
// trial index, the sampled injection site, and the underlying error. The
// campaign runtime propagates the first TrialError through the event
// stream as soon as the worker hits it.
type TrialError struct {
	// Index is the failing trial's index within the campaign.
	Index int
	// Site is the injection site the trial sampled before failing.
	Site faults.Site
	Err  error
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("core: trial %d (site %v): %v", e.Index, e.Site, e.Err)
}

func (e *TrialError) Unwrap() error { return e.Err }
