package core

import (
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/outcome"
	"repro/internal/tasks"
)

// Option configures a Campaign built with New.
type Option func(*Campaign)

// New assembles a Campaign from its required ingredients — model, task
// suite, fault model, trial count, and seed — plus functional options
// for everything else. This is the canonical construction path; the
// Campaign struct literal remains supported as the compatibility
// constructor for existing call sites.
func New(m *model.Model, suite *tasks.Suite, fault faults.Model, trials int, seed uint64, opts ...Option) Campaign {
	c := Campaign{Model: m, Suite: suite, Fault: fault, Trials: trials, Seed: seed}
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// WithWorkers bounds the campaign worker pool (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *Campaign) { c.Workers = n }
}

// WithThresholds tunes the distortion classifier.
func WithThresholds(t outcome.Thresholds) Option {
	return func(c *Campaign) { c.Thresholds = t }
}

// WithExtraHook installs an additional forward-hook factory — the slot
// where deployed mitigations run, after the fault hook.
func WithExtraHook(f func() model.Hook) Option {
	return func(c *Campaign) { c.ExtraHook = f }
}

// WithGen sets the decoding settings (beam count etc.).
func WithGen(gs gen.Settings) Option {
	return func(c *Campaign) { c.Gen = gs }
}

// WithFilter restricts the injectable layers (e.g. faults.GateOnly).
func WithFilter(f faults.TargetFilter) Option {
	return func(c *Campaign) { c.Filter = f }
}

// WithChecker overrides the answer criterion (nil = DefaultChecker).
func WithChecker(ch AnswerChecker) Option {
	return func(c *Campaign) { c.Check = ch }
}

// WithABFT arms the online checksum detector (internal/abft) for every
// trial of the campaign.
func WithABFT(cfg ABFTConfig) Option {
	return func(c *Campaign) { c.ABFT = &cfg }
}

// WithDecodeBatch sets the continuous-batching decode width: each
// worker keeps up to n trials in flight, stepping them through one
// stacked forward pass per token (≤1 = serial decode). Results are
// bit-identical to the serial path; campaigns the batched scheduler
// cannot express (multiple-choice, memory faults, beam search) fall
// back to serial automatically.
func WithDecodeBatch(n int) Option {
	return func(c *Campaign) { c.BatchDecode = n }
}

// WithCheckpointPath makes every runner of the campaign persist
// completed trials to path — periodically, and finally when the run
// completes, errors, or is cancelled. The campaign-level twin of the
// runner option WithCheckpoint, so the canonical core.New path covers
// checkpointing without constructing a Runner explicitly.
func WithCheckpointPath(path string) Option {
	return func(c *Campaign) { c.ckptPath = path }
}

// WithCheckpointInterval sets the number of completed trials between
// periodic checkpoint writes (default 64; needs WithCheckpointPath).
func WithCheckpointInterval(n int) Option {
	return func(c *Campaign) { c.ckptEvery = n }
}

// WithReasoningOnly restricts computational-fault iterations to the
// reasoning segment of the baseline output (the CoT study, §4.3.2).
func WithReasoningOnly(on bool) Option {
	return func(c *Campaign) { c.ReasoningOnly = on }
}

// withSeedPath pins the campaign to the seed execution path — deep
// per-worker clones, sequential prefill, full re-prefill per trial —
// recovering the pre-engine semantics exactly. Test-only: the golden
// equivalence suite and the benchmark harness bracket the engine
// against it.
func withSeedPath() Option {
	return func(c *Campaign) {
		c.Model = c.Model.Clone()
		c.Model.SetSequentialPrefill(true)
		c.noPrefixReuse = true
		c.deepClones = true
	}
}
