package core

import (
	"context"

	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/outcome"
	"repro/internal/tasks"
)

// syntheticResult builds a Result from hand-written trials so the
// aggregation arithmetic can be verified exactly.
func syntheticResult() *Result {
	suite := &tasks.Suite{
		Name:    "synthetic",
		Type:    tasks.Generative,
		Metrics: []metrics.Kind{metrics.KindBLEU, metrics.KindChrF},
	}
	baseline := &Baseline{
		Suite: suite,
		Instances: []InstanceBaseline{
			{Metrics: map[metrics.Kind]float64{metrics.KindBLEU: 0.8, metrics.KindChrF: 0.9}},
			{Metrics: map[metrics.Kind]float64{metrics.KindBLEU: 0.6, metrics.KindChrF: 0.7}},
		},
		MetricMeans: map[metrics.Kind]float64{metrics.KindBLEU: 0.7, metrics.KindChrF: 0.8},
	}
	mkSite := func(bits ...int) faults.Site {
		return faults.Site{Fault: faults.Mem2Bit, Bits: bits}
	}
	trials := []Trial{
		{
			Site: mkSite(14, 2), Fired: true, Steps: 10,
			Outcome: outcome.Analysis{Class: outcome.Masked},
			Metrics: map[metrics.Kind]float64{metrics.KindBLEU: 0.7, metrics.KindChrF: 0.8},
		},
		{
			Site: mkSite(14, 5), Fired: true, Steps: 20, ExpertChanged: true,
			Outcome:  outcome.Analysis{Class: outcome.SDCSubtle, Changed: true},
			Metrics:  map[metrics.Kind]float64{metrics.KindBLEU: 0.35, metrics.KindChrF: 0.4},
			AnswerOK: false,
		},
		{
			Site: mkSite(3, 7), Fired: false, Steps: 30,
			Outcome:  outcome.Analysis{Class: outcome.SDCDistorted, Changed: true},
			Metrics:  map[metrics.Kind]float64{metrics.KindBLEU: 0.0, metrics.KindChrF: 0.0},
			AnswerOK: true,
		},
	}
	return &Result{
		Campaign: Campaign{Suite: suite},
		Baseline: baseline,
		Trials:   trials,
	}
}

func TestMetricMean(t *testing.T) {
	r := syntheticResult()
	want := (0.7 + 0.35 + 0.0) / 3
	if got := r.MetricMean(metrics.KindBLEU); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MetricMean = %g, want %g", got, want)
	}
}

func TestNormalizedRatio(t *testing.T) {
	r := syntheticResult()
	ratio := r.Normalized(metrics.KindBLEU)
	want := ((0.7 + 0.35 + 0.0) / 3) / 0.7
	if math.Abs(ratio.Value-want) > 1e-12 {
		t.Fatalf("Normalized = %g, want %g", ratio.Value, want)
	}
	if !(ratio.Lo <= ratio.Value && ratio.Value <= ratio.Hi) {
		t.Fatal("CI does not bracket estimate")
	}
}

func TestMeanNormalizedAveragesMetrics(t *testing.T) {
	r := syntheticResult()
	bleu := r.Normalized(metrics.KindBLEU).Value
	chrf := r.Normalized(metrics.KindChrF).Value
	if got := r.MeanNormalized(); math.Abs(got-(bleu+chrf)/2) > 1e-12 {
		t.Fatalf("MeanNormalized = %g", got)
	}
}

func TestTallyAndRates(t *testing.T) {
	r := syntheticResult()
	tally := r.Tally()
	if tally.Masked != 1 || tally.Subtle != 1 || tally.Distorted != 1 {
		t.Fatalf("tally %+v", tally)
	}
	if math.Abs(r.MaskedRate()-1.0/3) > 1e-12 {
		t.Fatal("MaskedRate")
	}
	if math.Abs(r.FiredRate()-2.0/3) > 1e-12 {
		t.Fatal("FiredRate")
	}
	if math.Abs(r.ExpertChangedRate()-1.0/3) > 1e-12 {
		t.Fatal("ExpertChangedRate")
	}
	if math.Abs(r.OutputChangedRate()-2.0/3) > 1e-12 {
		t.Fatal("OutputChangedRate")
	}
	if math.Abs(r.GoldAccuracy()-1.0/3) > 1e-12 {
		t.Fatal("GoldAccuracy")
	}
	if r.MeanSteps() != 20 {
		t.Fatal("MeanSteps")
	}
}

func TestBitBreakdown(t *testing.T) {
	r := syntheticResult()
	buckets := r.BitBreakdown()
	// Highest bits: 14, 14, 7 -> two buckets.
	if len(buckets) != 2 {
		t.Fatalf("buckets %v", buckets)
	}
	if buckets[0].Bit != 7 || buckets[1].Bit != 14 {
		t.Fatal("bucket order should be ascending by bit")
	}
	if buckets[1].Trials != 2 || buckets[1].Subtle != 1 || buckets[1].Distorted != 0 {
		t.Fatalf("bit-14 bucket %+v", buckets[1])
	}
	if buckets[0].Distorted != 1 {
		t.Fatalf("bit-7 bucket %+v", buckets[0])
	}
}

func TestBitProportions(t *testing.T) {
	r := syntheticResult()
	subtle := r.BitProportions(outcome.SDCSubtle)
	if subtle[14] != 1.0 {
		t.Fatalf("subtle proportions %v", subtle)
	}
	distorted := r.BitProportions(outcome.SDCDistorted)
	if distorted[7] != 1.0 {
		t.Fatalf("distorted proportions %v", distorted)
	}
	if len(r.BitProportions(outcome.Masked)) != 1 {
		t.Fatal("masked proportions should have one bucket")
	}
}

func TestPrimaryMetric(t *testing.T) {
	r := syntheticResult()
	if r.PrimaryMetric() != metrics.KindBLEU {
		t.Fatal("primary metric should be the suite's first")
	}
}

func TestExpertTraceEqual(t *testing.T) {
	a := [][]int{{1, 2}, {3}}
	if !expertTraceEqual(a, [][]int{{1, 2}, {3}}) {
		t.Fatal("equal traces")
	}
	if expertTraceEqual(a, [][]int{{1, 2}, {4}}) {
		t.Fatal("different expert")
	}
	if expertTraceEqual(a, [][]int{{1, 2}}) {
		t.Fatal("different block count")
	}
	if expertTraceEqual(a, [][]int{{1}, {3}}) {
		t.Fatal("different trace length")
	}
}

func TestFaultWindowMC(t *testing.T) {
	suite := &tasks.Suite{Type: tasks.MultipleChoice}
	c := Campaign{Suite: suite}
	inst := tasks.Instance{
		Prompt:  make([]int, 10),
		Options: [][]int{make([]int, 3), make([]int, 5)},
	}
	iters, promptLen := c.faultWindow(&inst, &InstanceBaseline{})
	if iters != 15 || promptLen != 0 {
		t.Fatalf("MC window = (%d, %d), want (15, 0)", iters, promptLen)
	}
}

func TestFaultWindowGenerative(t *testing.T) {
	suite := &tasks.Suite{Type: tasks.Generative}
	c := Campaign{Suite: suite}
	inst := tasks.Instance{Prompt: make([]int, 8)}
	base := &InstanceBaseline{Tokens: make([]int, 12), ReasoningLen: 9}
	iters, promptLen := c.faultWindow(&inst, base)
	if iters != 12 || promptLen != 8 {
		t.Fatalf("gen window = (%d, %d)", iters, promptLen)
	}
	c.ReasoningOnly = true
	iters, _ = c.faultWindow(&inst, base)
	if iters != 9 {
		t.Fatalf("reasoning-only window = %d, want 9", iters)
	}
	// Empty baseline output still yields a valid window.
	iters, _ = c.faultWindow(&inst, &InstanceBaseline{})
	if iters != 1 {
		t.Fatalf("empty-output window = %d, want 1", iters)
	}
}

func TestExtraHookInstalledForBaselineAndTrials(t *testing.T) {
	m := testMCModel(t, model.QwenS)
	suite, err := tasks.NewMCSuite("winogrande", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	installs := 0
	c := Campaign{
		Model: m, Suite: suite, Fault: faults.Comp1Bit,
		Trials: 6, Seed: 2, Workers: 1,
		ExtraHook: func() model.Hook {
			installs++
			return func(model.LayerRef, int, []float32) {}
		},
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One install for the baseline + one per trial.
	if installs != 7 {
		t.Fatalf("ExtraHook installed %d times, want 7", installs)
	}
	if len(m.LinearLayers()) == 0 {
		t.Fatal("model unusable after campaign")
	}
}
