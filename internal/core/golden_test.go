package core

import (
	"context"

	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
)

// goldenModel builds an untrained profile model over the general vocab,
// optionally widened to a MoE.
func goldenModel(t *testing.T, fam model.Family, moe bool) *model.Model {
	t.Helper()
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("golden", vocab.Size(), numerics.BF16)
	if moe {
		cfg = model.MoEConfig(cfg)
	}
	return model.MustBuild(model.Spec{Config: cfg, Family: fam, Seed: 21})
}

// seedEquivalent runs the campaign twice — once through the prefix-cache
// engine (shared clones, batched prefill, snapshot reuse) and once pinned
// to the seed execution path (deep clones, sequential prefill, full
// re-prefill per trial) — and requires bit-identical trials and baseline
// outputs.
func seedEquivalent(t *testing.T, c Campaign) {
	t.Helper()

	engine := c
	engRes, err := engine.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	seed := c
	seed.Model = c.Model.Clone()
	seed.Model.SetSequentialPrefill(true)
	seed.noPrefixReuse = true
	seed.deepClones = true
	seedRes, err := seed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	for i := range seedRes.Baseline.Instances {
		a, b := &seedRes.Baseline.Instances[i], &engRes.Baseline.Instances[i]
		if a.Text != b.Text || a.Choice != b.Choice || a.Steps != b.Steps ||
			!reflect.DeepEqual(a.Metrics, b.Metrics) ||
			!reflect.DeepEqual(a.ExpertTrace, b.ExpertTrace) {
			t.Fatalf("baseline instance %d differs:\nseed   %+v\nengine %+v", i, a, b)
		}
	}
	if len(seedRes.Trials) != len(engRes.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(seedRes.Trials), len(engRes.Trials))
	}
	for i := range seedRes.Trials {
		if !reflect.DeepEqual(seedRes.Trials[i], engRes.Trials[i]) {
			t.Fatalf("trial %d differs:\nseed   %+v\nengine %+v", i, seedRes.Trials[i], engRes.Trials[i])
		}
	}
}

// TestEngineGoldenGenerative pins the full engine — batched prefill,
// baseline KV snapshot reuse, and copy-on-write worker clones — to the
// seed path for generative campaigns across fault models, architectures,
// and both decoding strategies.
func TestEngineGoldenGenerative(t *testing.T) {
	suite := tasks.NewSelfRefSuite("golden-gen", 5, 4, 24, 10, []metrics.Kind{metrics.KindBLEU})
	cases := []struct {
		name  string
		moe   bool
		fam   model.Family
		fault faults.Model
		gen   gen.Settings
	}{
		{"dense-greedy-comp1", false, model.QwenS, faults.Comp1Bit, gen.Settings{}},
		{"dense-beam-comp2", false, model.LlamaS, faults.Comp2Bit, gen.Settings{NumBeams: 3}},
		{"dense-greedy-mem2", false, model.FalconS, faults.Mem2Bit, gen.Settings{}},
		{"moe-greedy-comp2", true, model.QwenS, faults.Comp2Bit, gen.Settings{}},
		{"moe-greedy-mem2", true, model.LlamaS, faults.Mem2Bit, gen.Settings{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seedEquivalent(t, Campaign{
				Model:  goldenModel(t, tc.fam, tc.moe),
				Suite:  suite,
				Fault:  tc.fault,
				Trials: 12,
				Seed:   31,
				Gen:    tc.gen,
			})
		})
	}
}

// TestEngineGoldenMC pins the engine to the seed path for
// multiple-choice campaigns (which never reuse the prefix but do use
// batched option scoring and shared clones).
func TestEngineGoldenMC(t *testing.T) {
	suite, err := tasks.NewMCSuite("arc", 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, fault := range []faults.Model{faults.Comp2Bit, faults.Mem2Bit} {
		t.Run(fault.String(), func(t *testing.T) {
			seedEquivalent(t, Campaign{
				Model:  goldenModel(t, model.QwenS, false),
				Suite:  suite,
				Fault:  fault,
				Trials: 12,
				Seed:   13,
			})
		})
	}
}

// TestEngineGoldenWithMitigation pins the engine to the seed path with a
// range-restriction mitigation hook in the ExtraHook slot: the clamp must
// observe identical values on both paths (the snapshot already contains
// the mitigated prefill).
func TestEngineGoldenWithMitigation(t *testing.T) {
	m := goldenModel(t, model.QwenS, false)
	suite := tasks.NewSelfRefSuite("golden-mit", 9, 3, 20, 8, []metrics.Kind{metrics.KindBLEU})

	// Profile fault-free ranges once, then deploy a restrictor per run.
	prof := mitigate.Calibrate(m, suite, 0)

	seedEquivalent(t, Campaign{
		Model:  m,
		Suite:  suite,
		Fault:  faults.Comp2Bit,
		Trials: 10,
		Seed:   77,
		ExtraHook: func() model.Hook {
			return mitigate.NewRestrictor(prof).Hook()
		},
	})
}

// TestEngineReusesPrefix asserts the fast path actually engages: a
// generative computational-fault campaign must resume every trial from
// the baseline snapshot rather than silently falling back.
func TestEngineReusesPrefix(t *testing.T) {
	m := goldenModel(t, model.QwenS, false)
	suite := tasks.NewSelfRefSuite("golden-reuse", 3, 2, 16, 6, []metrics.Kind{metrics.KindBLEU})
	gs := defaultGen()
	base := EvalBaseline(m, suite, gs, nil)

	c := Campaign{Model: m, Suite: suite, Fault: faults.Comp2Bit, Trials: 4, Seed: 1}
	for i := range base.Instances {
		if !c.reusePrefix(&base.Instances[i]) {
			t.Fatalf("instance %d: computational generative trial should reuse prefix", i)
		}
	}
	c.Fault = faults.Mem2Bit
	if c.reusePrefix(&base.Instances[0]) {
		t.Fatal("memory-fault trial must not reuse prefix")
	}
	c.Fault = faults.Comp2Bit
	c.noPrefixReuse = true
	if c.reusePrefix(&base.Instances[0]) {
		t.Fatal("noPrefixReuse knob must disable reuse")
	}
	// RerunInstance baselines carry no snapshot.
	var bare InstanceBaseline
	c.noPrefixReuse = false
	if c.reusePrefix(&bare) {
		t.Fatal("baseline without snapshot must not reuse")
	}
}
