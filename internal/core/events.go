package core

import (
	"time"

	"repro/internal/outcome"
	"repro/internal/trace"
)

// Event is one item of a campaign's live event stream (Runner.Stream).
// Concrete types: BaselineReady, TrialDone, Progress, CampaignDone. The
// stream is ordered per campaign — BaselineReady first, then TrialDone
// and Progress interleaved as workers complete trials out of order, and
// exactly one terminal CampaignDone before the channel closes.
type Event interface{ isEvent() }

// BaselineReady reports the completed fault-free baseline evaluation —
// the first event of every stream, emitted before any trial runs.
type BaselineReady struct {
	Baseline *Baseline
}

// TrialDone reports one completed injection trial. Trials finish out of
// order; Index is the trial's position in Result.Trials.
type TrialDone struct {
	// Index is the trial index within the campaign.
	Index int
	// Worker identifies the pool worker that ran the trial.
	Worker int
	Trial  Trial
	// Trace is the trial's propagation record when the runner traced it
	// (WithTrace sampling); nil otherwise. It is not part of Result — the
	// trace sink and the event stream are its only outlets.
	Trace *trace.Record
}

// Progress is a periodic aggregate snapshot of a running campaign,
// emitted after trial completions (every Runner progress interval).
type Progress struct {
	// Done counts completed trials, including any restored from a resume
	// checkpoint; Total is the campaign's trial count.
	Done, Total int
	// TrialsPerSec is the throughput of this run (resumed trials are not
	// counted as work).
	TrialsPerSec float64
	// Fired counts trials whose fault actually struck.
	Fired int
	// Tally are the outcome-class counts so far.
	Tally outcome.Tally
	// Elapsed is the wall time since the worker pool started.
	Elapsed time.Duration
}

// Pct returns completion in percent.
func (p Progress) Pct() float64 {
	if p.Total == 0 {
		return 0
	}
	return 100 * float64(p.Done) / float64(p.Total)
}

// ETA estimates the remaining wall time from the current throughput.
func (p Progress) ETA() time.Duration {
	if p.TrialsPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(p.Total-p.Done) / p.TrialsPerSec * float64(time.Second))
}

// CampaignDone is the terminal event of a stream: the completed Result,
// or the error (first worker failure, checkpoint write failure, or
// ctx.Err() after a cancellation) that ended the campaign.
type CampaignDone struct {
	Result *Result
	Err    error
}

func (BaselineReady) isEvent() {}
func (TrialDone) isEvent()     {}
func (Progress) isEvent()      {}
func (CampaignDone) isEvent()  {}
