package core

import (
	"context"

	"testing"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/outcome"
	"repro/internal/pretrained"
	"repro/internal/tasks"
)

// testMCModel returns a small profile model sized for the MC suites.
func testMCModel(t *testing.T, fam model.Family) *model.Model {
	t.Helper()
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("test-"+fam.String(), vocab.Size(), numerics.BF16)
	m, err := model.Build(model.Spec{Config: cfg, Family: fam, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMCCampaignSmoke(t *testing.T) {
	m := testMCModel(t, model.QwenS)
	suite, err := tasks.NewMCSuite("arc", 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, fm := range faults.Models {
		c := Campaign{Model: m, Suite: suite, Fault: fm, Trials: 24, Seed: 99}
		res, err := c.Run(context.Background())
		if err != nil {
			t.Fatalf("%v: %v", fm, err)
		}
		if len(res.Trials) != 24 {
			t.Fatalf("%v: got %d trials", fm, len(res.Trials))
		}
		masked := res.MaskedRate()
		if masked < 0.2 {
			t.Errorf("%v: implausibly low masked rate %.2f", fm, masked)
		}
		t.Logf("%v masked=%.2f goldAcc=%.2f norm=%.3f", fm, masked, res.GoldAccuracy(), res.NormalizedPrimary().Value)
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	m := testMCModel(t, model.LlamaS)
	suite, err := tasks.NewMCSuite("winogrande", 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []Trial {
		c := Campaign{Model: m, Suite: suite, Fault: faults.Mem2Bit, Trials: 16, Seed: 5, Workers: workers}
		res, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Trials
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i].Site.String() != b[i].Site.String() || a[i].Choice != b[i].Choice {
			t.Fatalf("trial %d differs across worker counts:\n%v choice %d\n%v choice %d",
				i, a[i].Site, a[i].Choice, b[i].Site, b[i].Choice)
		}
	}
}

func TestGenerativeCampaignWithTrainedModel(t *testing.T) {
	loader := pretrained.NewLoader(pretrained.DefaultDir())
	m, err := loader.Load("math-qwens")
	if err != nil {
		t.Fatal(err)
	}
	mt := pretrained.MathTask()
	suite := mt.Suite(3, 6, true)
	c := Campaign{Model: m, Suite: suite, Fault: faults.Mem2Bit, Trials: 30, Seed: 17}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.GoldAccuracy < 0.5 {
		t.Fatalf("trained math model fault-free accuracy too low: %.2f", res.Baseline.GoldAccuracy)
	}
	tally := res.Tally()
	t.Logf("baseline acc %.2f, norm %.3f, tally %+v", res.Baseline.GoldAccuracy, res.NormalizedPrimary().Value, tally)
	if tally.Total() != 30 {
		t.Fatal("tally mismatch")
	}
	// Memory faults must be restored between trials: rerunning the
	// baseline after the campaign must give identical outputs.
	again := EvalBaseline(m, suite, defaultGen(), nil)
	for i := range again.Instances {
		if again.Instances[i].Text != res.Baseline.Instances[i].Text {
			t.Fatalf("model mutated by campaign at instance %d", i)
		}
	}
	_ = outcome.Masked
}
