package core

import (
	"context"
	"time"

	"repro/internal/abft"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/outcome"
	"repro/internal/prng"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// batchedWorker is one pool worker running the continuous-batching
// decode scheduler: it admits up to Campaign.BatchDecode trials into a
// model.Batch, steps every in-flight trial through one stacked forward
// pass per token, and retires each trial the moment its own greedy loop
// finishes — immediately refilling the freed row from the jobs channel.
//
// Bit-identity to the serial path holds trial by trial: admission
// mirrors runTrial's preamble exactly (same Split(t) seeding, same
// sampled site, same prefix fork, same hook order), each decode step
// runs the row's computation in MatVec accumulation order with the
// trial's own hooks and checker observing only its rows (model.Batch's
// contract), and retirement mirrors runTrial's postamble. Scheduling
// therefore cannot influence any trial's outcome — only wall-clock.
type batchedWorker struct {
	c       Campaign
	r       *Runner
	worker  int
	wm      *model.Model
	sampler *faults.Sampler
	seedSrc *prng.Source
	base    *Baseline
	gs      gen.Settings
	check   AnswerChecker
	// cache shares clean-weight checksums across the worker's per-trial
	// ABFT checkers (nil without Campaign.ABFT).
	cache    *abft.Cache
	traceOn  bool
	traceTol float64
	results  chan<- trialResult
	cancel   context.CancelFunc
	// free recycles retired rows: a slot turnover reuses the retired
	// trial's KV-cache and logits allocations for the admitted trial
	// (ForkForInto) instead of churning the allocator once per trial.
	free []*model.DecodeRow
}

// inFlight is one admitted trial riding a batch row until it retires.
type inFlight struct {
	t, idx    int
	inst      tasks.Instance
	base      *InstanceBaseline
	site      faults.Site
	promptLen int
	strikePos int
	inj       *faults.Injection
	probe     *trace.Probe
	checker   *abft.Checker
	timed     *timedChecker
	row       *model.DecodeRow
	stepper   *gen.Stepper
	sp        *spanTimes
	instr     trialInstr
	// busy accumulates the trial's attributed wall time: its admission
	// and retirement run whole, plus an equal share of every batch step
	// it rode in — so worker utilization stays comparable to serial.
	busy time.Duration
}

// run drains the jobs channel through the batch engine. On a trial
// error it reports, cancels the pool, and returns; on context
// cancellation it abandons the in-flight trials (they are not reported
// as completed, so checkpoint resume re-executes them).
func (bw *batchedWorker) run(ctx context.Context, jobs <-chan int) {
	bt := bw.wm.NewBatch(bw.c.BatchDecode)
	maxSeq := bw.wm.Cfg.MaxSeq
	active := make([]*inFlight, 0, bt.Capacity())
	rows := make([]*model.DecodeRow, 0, bt.Capacity())

	for {
		if ctx.Err() != nil {
			return
		}
		// Refill every free row. A trial that finishes on its very first
		// token (admit returns done) never occupies a row at all.
		for len(active) < bt.Capacity() {
			t, ok := <-jobs
			if !ok {
				break
			}
			f, done, err := bw.admit(t)
			if err != nil {
				bw.results <- trialResult{index: t, worker: bw.worker, err: err}
				bw.cancel()
				return
			}
			if done != nil {
				bw.results <- *done
				if done.err != nil {
					bw.cancel()
					return
				}
				continue
			}
			active = append(active, f)
		}
		if len(active) == 0 {
			return
		}

		rows = rows[:0]
		for _, f := range active {
			rows = append(rows, f.row)
		}
		stepStart := now()
		bt.Step(rows)
		share := since(stepStart) / time.Duration(len(active))
		bw.r.tel.observeBatch(len(active))

		keep := active[:0]
		for _, f := range active {
			f.sp.decode += share
			f.busy += share
			tok, step := f.stepper.Next(f.row.Logits, f.row.St.Pos, maxSeq)
			if step {
				f.row.Tok = tok
				keep = append(keep, f)
				continue
			}
			bw.results <- bw.retire(f)
		}
		active = keep
	}
}

// admit prepares trial t for the batch: it mirrors runTrial's preamble —
// site sampling from Split(t), ABFT protection before arming, the
// fault/mitigation/probe hook chain — but arms the fault as a row hook
// and forks the baseline prefix onto a DecodeRow instead of running a
// serial generation. A trial whose greedy loop ends on the prefix
// logits (zero-token budget, immediate stop) is completed inline and
// returned as done.
func (bw *batchedWorker) admit(t int) (*inFlight, *trialResult, error) {
	c := bw.c
	start := now()
	idx := t % len(c.Suite.Instances)
	inst := c.Suite.Instances[idx]
	base := &bw.base.Instances[idx]
	if inst.Reference == "" {
		inst.Reference = base.Reference
	}
	if base.prefix == nil {
		// No snapshot to fork (defensive; evalBaseline always snapshots
		// generative suites). Run the trial serially between batch steps —
		// Batch.Step ignores model-level hooks and checker, so a complete
		// serial trial cannot observe or perturb the in-flight rows.
		return nil, bw.serialFallback(t), nil
	}

	maxIters, promptLen := c.faultWindow(&inst, base)
	site := bw.sampler.Sample(bw.seedSrc.Split(uint64(t)), c.Fault, maxIters)
	strikePos := promptLen + site.GenIter

	instr := trialInstr{traced: bw.traceOn && t%bw.r.traceEvery == 0, tol: bw.traceTol}
	var probe *trace.Probe
	if instr.traced && base.capture != nil {
		probe = trace.NewProbe(base.capture, trace.ProbeConfig{
			Tol: instr.tol, StrikePos: strikePos, Site: site.Layer,
		})
	}

	sp := &spanTimes{}
	var checker *abft.Checker
	var timed *timedChecker
	if c.ABFT != nil {
		// Per-trial checker over the worker's shared checksum cache: each
		// in-flight trial keeps its own events and stats while the
		// O(k·n) clean-weight sums are computed once per layer per worker.
		// Protect precedes ArmHook as in the serial path (moot here —
		// row hooks never touch the weights — but kept for symmetry).
		checker = abft.NewWithCache(abft.Config{Tol: c.ABFT.Tol, Policy: c.ABFT.Policy}, bw.cache)
		var perr error
		if c.ABFT.AllLayers {
			perr = checker.ProtectAll(bw.wm)
		} else {
			perr = checker.Protect(bw.wm, site.Layer)
		}
		if perr != nil {
			return nil, nil, &TrialError{Index: t, Site: site, Err: perr}
		}
		timed = &timedChecker{inner: checker}
		sp.abftOn = true
	}

	inj, hook, err := faults.ArmHook(bw.wm, site, promptLen)
	if err != nil {
		return nil, nil, &TrialError{Index: t, Site: site, Err: err}
	}
	hooks := []model.Hook{hook}
	if c.ExtraHook != nil {
		// Mitigations observe values after the fault hook mutated them.
		hooks = append(hooks, c.ExtraHook())
	}
	if probe != nil {
		// The probe observes last — after the fault and any mitigation
		// hook have mutated the row — and never modifies it.
		hooks = append(hooks, probe.Hook())
	}

	gs := bw.gs
	gs.MaxNewTokens = inst.MaxNew
	gs.MinNewTokens = inst.MinNew
	prefillStart := now()
	var row *model.DecodeRow
	if n := len(bw.free); n > 0 {
		row = bw.free[n-1]
		bw.free = bw.free[:n-1]
		base.prefix.ForkForInto(bw.wm, row.St)
	} else {
		row = &model.DecodeRow{St: base.prefix.ForkFor(bw.wm), Logits: make([]float32, c.Model.Cfg.Vocab)}
	}
	row.Hooks = hooks
	row.Checker = nil
	copy(row.Logits, base.prefixLogits)
	// The fork stands in for prefill on this path (as in resumeInstance).
	sp.prefill += since(prefillStart)
	if timed != nil {
		row.Checker = timed
	}
	st := row.St

	f := &inFlight{
		t: t, idx: idx, inst: inst, base: base,
		site: site, promptLen: promptLen, strikePos: strikePos,
		inj: inj, probe: probe, checker: checker, timed: timed,
		row: row, stepper: gen.NewStepper(gs), sp: sp, instr: instr,
	}
	// First stepper call consumes the prefix logits, exactly as the
	// serial ContinueGreedy does before its first DecodeStep.
	tok, step := f.stepper.Next(row.Logits, st.Pos, bw.wm.Cfg.MaxSeq)
	f.busy += since(start)
	if !step {
		// The trial finished without a single decode step.
		done := bw.retire(f)
		return nil, &done, nil
	}
	row.Tok = tok
	return f, nil, nil
}

// retire finishes an in-flight trial: it mirrors runTrial's postamble —
// scoring, detection summary, outcome classification, trace record —
// over the stepper's accumulated Result.
func (bw *batchedWorker) retire(f *inFlight) trialResult {
	c := bw.c
	start := now()
	res := f.stepper.Result()
	f.sp.steps = res.Steps
	// Steps is the runtime proxy for the modeled inference, which still
	// includes the prompt the snapshot stands in for.
	res.Steps += len(f.inst.Prompt)

	var ib InstanceBaseline
	moeTrace := bw.wm.Cfg.IsMoE() && bw.gs.NumBeams <= 1
	if moeTrace {
		ib.ExpertTrace = f.row.St.ExpertTrace
	}
	classifyStart := now()
	finishGenerative(&ib, c.Suite, &f.inst, res, bw.check, false)
	f.sp.classify += since(classifyStart)

	fired := f.inj.Fired
	f.inj.Disarm() // no-op for row hooks; kept for protocol symmetry

	trial := Trial{
		Site:     f.site,
		Instance: f.idx,
		Fired:    fired,
		AnswerOK: ib.AnswerOK,
		Choice:   ib.Choice,
		Metrics:  ib.Metrics,
		Steps:    ib.Steps,
	}
	if f.checker != nil {
		f.sp.mitigate = f.checker.MitigationTime()
		f.sp.abft = f.timed.total - f.sp.mitigate
		classifyStart := now()
		trial.Detection = summarizeDetection(f.checker, f.site, f.promptLen, fired)
		f.sp.classify += since(classifyStart)
	}
	classifyStart = now()
	trial.Outcome = outcome.Classify(ib.Tokens, f.base.Tokens, ib.AnswerOK, c.Thresholds)
	if moeTrace {
		trial.ExpertChanged = !expertTraceEqual(ib.ExpertTrace, f.base.ExpertTrace)
	}
	f.sp.classify += since(classifyStart)

	var rec *trace.Record
	if f.instr.traced {
		rec = &trace.Record{
			Schema:     trace.SchemaVersion,
			Trial:      f.t,
			Instance:   f.idx,
			Fault:      f.site.Fault.String(),
			Site:       f.site.String(),
			Layer:      f.site.Layer.String(),
			Block:      f.site.Layer.Block,
			Bits:       f.site.Bits,
			HighestBit: f.site.HighestBit(),
			GenIter:    f.site.GenIter,
			StrikePos:  f.strikePos,
			Fired:      fired,
			Outcome:    trial.Outcome.Class.String(),
			AnswerOK:   trial.AnswerOK,
			Steps:      trial.Steps,
		}
		if f.probe != nil {
			f.probe.Fill(rec)
		}
		rec.Spans = f.sp.spans()
	}
	bw.r.tel.observeSpans(f.sp)
	f.busy += since(start)
	// The row's buffers are dead from here: everything retirement needed
	// has been copied out, so the next admission may reuse them.
	bw.free = append(bw.free, f.row)
	tr := trialResult{index: f.t, worker: bw.worker, trial: trial, rec: rec, busy: f.busy}
	if bw.r.spanObs != nil {
		tr.spans = f.sp.spans()
	}
	return tr
}

// serialFallback runs trial t through the ordinary serial runTrial. Used
// only when an instance carries no prefix snapshot; the serial checker
// still shares the worker's checksum cache.
func (bw *batchedWorker) serialFallback(t int) *trialResult {
	c := bw.c
	var checker *abft.Checker
	if c.ABFT != nil {
		checker = abft.NewWithCache(abft.Config{Tol: c.ABFT.Tol, Policy: c.ABFT.Policy}, bw.cache)
	}
	instr := trialInstr{traced: bw.traceOn && t%bw.r.traceEvery == 0, tol: bw.traceTol}
	sp := &spanTimes{}
	start := now()
	trial, rec, err := c.runTrial(bw.wm, bw.sampler, bw.seedSrc.Split(uint64(t)), t, bw.base, bw.gs, bw.check, checker, instr, sp)
	if err != nil {
		return &trialResult{index: t, worker: bw.worker, err: err}
	}
	bw.r.tel.observeSpans(sp)
	tr := &trialResult{index: t, worker: bw.worker, trial: trial, rec: rec, busy: since(start)}
	if bw.r.spanObs != nil {
		tr.spans = sp.spans()
	}
	return tr
}
