package core

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tasks"
)

// requireSameResult asserts two campaign results are bit-identical:
// same baseline outputs and deep-equal trial records.
func requireSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Baseline.Instances) != len(got.Baseline.Instances) {
		t.Fatalf("baseline sizes differ: %d vs %d",
			len(want.Baseline.Instances), len(got.Baseline.Instances))
	}
	for i := range want.Baseline.Instances {
		a, b := &want.Baseline.Instances[i], &got.Baseline.Instances[i]
		if a.Text != b.Text || a.Choice != b.Choice || a.Steps != b.Steps ||
			!reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Fatalf("baseline instance %d differs:\nwant %+v\ngot  %+v", i, a, b)
		}
	}
	if len(want.Trials) != len(got.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(want.Trials), len(got.Trials))
	}
	for i := range want.Trials {
		if !reflect.DeepEqual(want.Trials[i], got.Trials[i]) {
			t.Fatalf("trial %d differs:\nwant %+v\ngot  %+v", i, want.Trials[i], got.Trials[i])
		}
	}
}

// resumeCase runs the campaign to completion for reference, then replays
// it from a checkpoint holding the first half of the trials (stored in
// reverse completion order, to exercise the index mapping) and requires
// the merged Result to be bit-identical.
func resumeCase(t *testing.T, c Campaign) {
	t.Helper()
	ctx := context.Background()
	ref, err := NewRunner(c).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	k := c.Trials / 2
	ck := &Checkpoint{Fingerprint: c.Fingerprint()}
	for i := k - 1; i >= 0; i-- {
		ck.Indices = append(ck.Indices, i)
		ck.Trials = append(ck.Trials, ref.Trials[i])
	}
	path := filepath.Join(t.TempDir(), "case.ckpt")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}

	res, err := NewRunner(c).Resume(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, res)

	// The final checkpoint written back must now hold every trial.
	full, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if full.Done() != c.Trials {
		t.Fatalf("final checkpoint holds %d trials, want %d", full.Done(), c.Trials)
	}
}

// TestRunnerResumeBitIdentical sweeps resume equivalence across the
// architecture (dense/MoE) × decoding (greedy/beam) × fault-model axes:
// a run resumed from a partial checkpoint must merge to the exact Result
// of an uninterrupted run.
func TestRunnerResumeBitIdentical(t *testing.T) {
	suite := tasks.NewSelfRefSuite("runner-resume", 5, 3, 18, 7, []metrics.Kind{metrics.KindBLEU})
	for _, arch := range []struct {
		name string
		moe  bool
	}{{"dense", false}, {"moe", true}} {
		for _, dec := range []struct {
			name  string
			beams int
		}{{"greedy", 1}, {"beam", 3}} {
			for _, fault := range []faults.Model{faults.Comp1Bit, faults.Comp2Bit, faults.Mem2Bit} {
				name := arch.name + "-" + dec.name + "-" + fault.String()
				t.Run(name, func(t *testing.T) {
					resumeCase(t, Campaign{
						Model:   goldenModel(t, model.QwenS, arch.moe),
						Suite:   suite,
						Fault:   fault,
						Trials:  8,
						Seed:    19,
						Workers: 2,
						Gen:     gen.Settings{NumBeams: dec.beams},
					})
				})
			}
		}
	}
}

// TestRunnerInterruptThenResume exercises the real interrupt path: the
// stream is cancelled after the second completed trial, the runner
// writes its final checkpoint on the way out, and resuming from that
// file merges to the exact uninterrupted Result.
//
// The trials of this workload run in fractions of a millisecond, so
// asserting "cancellation stopped the pool" by racing the consumer
// goroutine against free-running workers is flaky by construction.
// Instead the interrupted run installs a gating ExtraHook: the first two
// trials run free, later ones block at their first layer output until
// the consumer has cancelled — which pins the actual contract (the pool
// stops within one in-flight trial per worker) deterministically.
// ExtraHook presence is part of the campaign fingerprint, so the
// reference and resumed runs install an inert hook to keep the three
// fingerprints equal.
func TestRunnerInterruptThenResume(t *testing.T) {
	c := Campaign{
		Model:   goldenModel(t, model.QwenS, false),
		Suite:   tasks.NewSelfRefSuite("runner-intr", 7, 3, 18, 7, []metrics.Kind{metrics.KindBLEU}),
		Fault:   faults.Comp2Bit,
		Trials:  24,
		Seed:    5,
		Workers: 2,
	}
	c.ExtraHook = func() model.Hook {
		return func(model.LayerRef, int, []float32) {}
	}
	ref, err := NewRunner(c).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Installations happen in a deterministic order: #1 is the baseline
	// evaluation, #2 and #3 are the first two trials; everything later
	// blocks until release closes.
	release := make(chan struct{})
	var installs atomic.Int32
	gated := c
	gated.ExtraHook = func() model.Hook {
		wait := installs.Add(1) > 3
		return func(model.LayerRef, int, []float32) {
			if wait {
				wait = false
				<-release
			}
		}
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(gated, WithCheckpoint(path), WithCheckpointEvery(1))

	var final CampaignDone
	sawBaseline, sawFinal, trials := false, false, 0
	for ev := range r.Stream(ctx) {
		switch e := ev.(type) {
		case BaselineReady:
			if trials > 0 {
				t.Fatal("BaselineReady must precede TrialDone")
			}
			if e.Baseline == nil {
				t.Fatal("BaselineReady carries nil baseline")
			}
			sawBaseline = true
		case TrialDone:
			trials++
			if trials == 2 {
				cancel()
				close(release)
			}
		case Progress:
			if e.Total != c.Trials || e.Done < 1 || e.Done > c.Trials {
				t.Fatalf("bad progress event %+v", e)
			}
		case CampaignDone:
			final, sawFinal = e, true
		}
	}
	if !sawBaseline || !sawFinal {
		t.Fatalf("stream missing events: baseline=%v final=%v", sawBaseline, sawFinal)
	}
	if !errors.Is(final.Err, context.Canceled) {
		t.Fatalf("interrupted stream err = %v, want context.Canceled", final.Err)
	}
	if final.Result != nil {
		t.Fatal("interrupted stream must not deliver a Result")
	}
	if trials >= c.Trials {
		t.Fatalf("cancellation did not stop the pool: %d/%d trials ran", trials, c.Trials)
	}

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Done() < 2 || ck.Done() >= c.Trials {
		t.Fatalf("checkpoint holds %d trials, want partial >= 2", ck.Done())
	}

	res, err := NewRunner(c).Resume(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, res)
}

// TestRunnerCancellation pins the blocking-Run contract: a cancelled
// context stops the pool within one in-flight trial per worker and
// surfaces ctx.Err().
func TestRunnerCancellation(t *testing.T) {
	c := Campaign{
		Model:   goldenModel(t, model.QwenS, false),
		Suite:   tasks.NewSelfRefSuite("runner-cancel", 3, 2, 16, 6, []metrics.Kind{metrics.KindBLEU}),
		Fault:   faults.Comp1Bit,
		Trials:  32,
		Seed:    3,
		Workers: 2,
	}

	// Pre-cancelled context: no work at all.
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run err = %v, want context.Canceled", err)
	}

	// Mid-run cancel: wait for the first completed trial, then cancel.
	// With 2 workers, at most the two in-flight trials may still finish.
	// As in TestRunnerInterruptThenResume, a gating ExtraHook keeps the
	// sub-millisecond trials from outrunning the cancelling goroutine:
	// install #1 is the baseline, #2 the first trial, and later trials
	// block until the cancel has landed.
	release := make(chan struct{})
	var installs atomic.Int32
	gated := c
	gated.ExtraHook = func() model.Hook {
		wait := installs.Add(1) > 2
		return func(model.LayerRef, int, []float32) {
			if wait {
				wait = false
				<-release
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tel := NewTelemetry()
	go func() {
		for tel.Snapshot().DoneTrials == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
		close(release)
	}()
	res, err := NewRunner(gated, WithTelemetry(tel)).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled Run must not return a Result")
	}
	if done := tel.Snapshot().DoneTrials; done >= c.Trials {
		t.Fatalf("cancellation did not stop the pool: %d/%d trials ran", done, c.Trials)
	}
}

// TestRunnerStreamMatchesBlockingRun requires the streaming path to
// deliver the same Result as blocking Run, with a complete and ordered
// event stream: BaselineReady first, a TrialDone per trial forming a
// permutation of the indices, and a terminal CampaignDone.
func TestRunnerStreamMatchesBlockingRun(t *testing.T) {
	c := Campaign{
		Model:   goldenModel(t, model.QwenS, false),
		Suite:   tasks.NewSelfRefSuite("runner-stream", 9, 3, 18, 7, []metrics.Kind{metrics.KindBLEU}),
		Fault:   faults.Comp2Bit,
		Trials:  10,
		Seed:    23,
		Workers: 2,
	}
	ref, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	seen := make([]bool, c.Trials)
	var final CampaignDone
	sawFinal := false
	var lastProgress Progress
	for ev := range NewRunner(c).Stream(context.Background()) {
		switch e := ev.(type) {
		case TrialDone:
			if e.Index < 0 || e.Index >= c.Trials || seen[e.Index] {
				t.Fatalf("bad or duplicate TrialDone index %d", e.Index)
			}
			seen[e.Index] = true
			if !reflect.DeepEqual(e.Trial, ref.Trials[e.Index]) {
				t.Fatalf("streamed trial %d differs from blocking run", e.Index)
			}
		case Progress:
			lastProgress = e
		case CampaignDone:
			final, sawFinal = e, true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("no TrialDone for trial %d", i)
		}
	}
	if !sawFinal || final.Err != nil || final.Result == nil {
		t.Fatalf("bad terminal event %+v", final)
	}
	if lastProgress.Done != c.Trials || lastProgress.Total != c.Trials {
		t.Fatalf("final progress %d/%d, want %d/%d",
			lastProgress.Done, lastProgress.Total, c.Trials, c.Trials)
	}
	if lastProgress.Pct() != 100 {
		t.Fatalf("final progress pct = %f", lastProgress.Pct())
	}
	requireSameResult(t, ref, final.Result)
}

// TestRunnerTelemetry checks the registry against a completed campaign:
// counts, rates, per-worker accounting, and ExtraHook fire counting.
func TestRunnerTelemetry(t *testing.T) {
	hooked := func() model.Hook {
		return func(ref model.LayerRef, step int, out []float32) {}
	}
	c := Campaign{
		Model:     goldenModel(t, model.QwenS, false),
		Suite:     tasks.NewSelfRefSuite("runner-tel", 11, 2, 16, 6, []metrics.Kind{metrics.KindBLEU}),
		Fault:     faults.Comp2Bit,
		Trials:    6,
		Seed:      7,
		Workers:   2,
		ExtraHook: hooked,
	}
	tel := NewTelemetry()
	res, err := NewRunner(c, WithTelemetry(tel)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	s := tel.Snapshot()
	if s.TotalTrials != c.Trials || s.DoneTrials != c.Trials {
		t.Fatalf("telemetry counts %d/%d, want %d/%d",
			s.DoneTrials, s.TotalTrials, c.Trials, c.Trials)
	}
	if s.TrialsPerSec <= 0 || s.ElapsedSeconds <= 0 {
		t.Fatalf("telemetry throughput not populated: %+v", s)
	}
	fired := 0
	for _, tr := range res.Trials {
		if tr.Fired {
			fired++
		}
	}
	if s.Fired != fired {
		t.Fatalf("telemetry fired = %d, result says %d", s.Fired, fired)
	}
	if want := float64(fired) / float64(c.Trials); s.FiredRate != want {
		t.Fatalf("fired rate = %f, want %f", s.FiredRate, want)
	}
	if s.Masked+s.Subtle+s.Distorted > c.Trials {
		t.Fatalf("outcome tally exceeds trials: %+v", s)
	}
	if s.HookFires == 0 {
		t.Fatal("ExtraHook fires not counted")
	}
	if len(s.Workers) != 2 {
		t.Fatalf("worker snapshots = %d, want 2", len(s.Workers))
	}
	workerTrials := 0
	for _, w := range s.Workers {
		workerTrials += w.Trials
		if w.Trials > 0 && w.BusySeconds <= 0 {
			t.Fatalf("busy worker with zero busy time: %+v", w)
		}
	}
	if workerTrials != c.Trials {
		t.Fatalf("per-worker trials sum to %d, want %d", workerTrials, c.Trials)
	}
}

// TestRunnerTelemetryHookWrapDoesNotChangeResult guards golden
// equivalence of the telemetry instrumentation: wrapping ExtraHook with
// the fire counter must not perturb the mitigation's observed values.
func TestRunnerTelemetryHookWrapDoesNotChangeResult(t *testing.T) {
	mk := func() Campaign {
		return Campaign{
			Model:  goldenModel(t, model.QwenS, false),
			Suite:  tasks.NewSelfRefSuite("runner-wrap", 13, 2, 16, 6, []metrics.Kind{metrics.KindBLEU}),
			Fault:  faults.Comp2Bit,
			Trials: 6,
			Seed:   29,
			ExtraHook: func() model.Hook {
				return func(ref model.LayerRef, step int, out []float32) {
					// Value-dependent mitigation stand-in: clamp extremes.
					for i, v := range out {
						if v > 1e3 {
							out[i] = 1e3
						}
					}
				}
			},
		}
	}
	a, err := mk().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, a, b)
}

// TestCampaignSentinelErrors pins the typed validation errors.
func TestCampaignSentinelErrors(t *testing.T) {
	m := goldenModel(t, model.QwenS, false)
	suite := tasks.NewSelfRefSuite("runner-errs", 1, 2, 16, 6, []metrics.Kind{metrics.KindBLEU})
	ctx := context.Background()

	_, err := Campaign{Model: m, Suite: suite, Fault: faults.Comp1Bit}.Run(ctx)
	if !errors.Is(err, ErrNoTrials) {
		t.Fatalf("zero trials err = %v, want ErrNoTrials", err)
	}

	empty := &tasks.Suite{Name: "empty", Type: tasks.Generative}
	_, err = Campaign{Model: m, Suite: empty, Fault: faults.Comp1Bit, Trials: 2}.Run(ctx)
	if !errors.Is(err, ErrEmptySuite) {
		t.Fatalf("empty suite err = %v, want ErrEmptySuite", err)
	}

	smallCfg := m.Cfg
	smallCfg.MaxSeq = 4
	sm := model.MustBuild(model.Spec{Config: smallCfg, Family: model.QwenS, Seed: 3})
	_, err = Campaign{Model: sm, Suite: suite, Fault: faults.Comp1Bit, Trials: 2}.Run(ctx)
	if !errors.Is(err, ErrContextTooSmall) {
		t.Fatalf("small context err = %v, want ErrContextTooSmall", err)
	}
}

// TestTrialError checks the error's locating fields and unwrapping.
func TestTrialError(t *testing.T) {
	inner := errors.New("boom")
	te := &TrialError{Index: 7, Site: faults.Site{Row: 1, Col: 2}, Err: inner}
	if !errors.Is(te, inner) {
		t.Fatal("TrialError must unwrap to the cause")
	}
	if te.Error() == "" || te.Index != 7 {
		t.Fatalf("bad TrialError %+v", te)
	}
}

// TestRunnerCheckpointWriteFailure requires a failing checkpoint write
// to abort the campaign with the write error rather than silently
// dropping persistence.
func TestRunnerCheckpointWriteFailure(t *testing.T) {
	c := Campaign{
		Model:   goldenModel(t, model.QwenS, false),
		Suite:   tasks.NewSelfRefSuite("runner-ckfail", 15, 2, 16, 6, []metrics.Kind{metrics.KindBLEU}),
		Fault:   faults.Comp1Bit,
		Trials:  4,
		Seed:    2,
		Workers: 1,
	}
	bad := filepath.Join(t.TempDir(), "missing-dir", "run.ckpt")
	_, err := NewRunner(c, WithCheckpoint(bad), WithCheckpointEvery(1)).Run(context.Background())
	if err == nil {
		t.Fatal("unwritable checkpoint path must fail the run")
	}
}

// TestNewWithOptions checks the functional-options constructor against
// the struct literal it must remain equivalent to.
func TestNewWithOptions(t *testing.T) {
	m := goldenModel(t, model.QwenS, false)
	suite := tasks.NewSelfRefSuite("runner-opts", 17, 2, 16, 6, []metrics.Kind{metrics.KindBLEU})
	c := New(m, suite, faults.Mem2Bit, 9, 41,
		WithWorkers(3),
		WithGen(gen.Settings{NumBeams: 2}),
		WithFilter(faults.GateOnly),
		WithReasoningOnly(true),
		WithExtraHook(func() model.Hook {
			return func(ref model.LayerRef, step int, out []float32) {}
		}),
	)
	if c.Model != m || c.Suite != suite || c.Fault != faults.Mem2Bit ||
		c.Trials != 9 || c.Seed != 41 || c.Workers != 3 ||
		c.Gen.NumBeams != 2 || !c.ReasoningOnly ||
		c.Filter == nil || c.ExtraHook == nil {
		t.Fatalf("New did not apply options: %+v", c)
	}
	if c.noPrefixReuse || c.deepClones {
		t.Fatal("production constructor must not engage seed-path knobs")
	}

	s := New(m, suite, faults.Comp1Bit, 2, 1, withSeedPath())
	if !s.noPrefixReuse || !s.deepClones || s.Model == m {
		t.Fatal("withSeedPath must pin the seed execution path on a clone")
	}
}
