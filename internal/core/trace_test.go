package core

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// traceCampaign is the generative workload shared by the tracing tests.
func traceCampaign(t *testing.T, fault faults.Model) Campaign {
	t.Helper()
	return Campaign{
		Model:   goldenModel(t, model.QwenS, false),
		Suite:   tasks.NewSelfRefSuite("trace-core", 31, 3, 18, 7, []metrics.Kind{metrics.KindBLEU}),
		Fault:   fault,
		Trials:  12,
		Seed:    77,
		Workers: 2,
	}
}

// collectTraces runs the campaign with every-trial tracing and returns
// the records (sink runs on the single collector goroutine, so the
// append is race-free).
func collectTraces(t *testing.T, c Campaign, opts ...RunnerOption) []trace.Record {
	t.Helper()
	var recs []trace.Record
	opts = append(opts, WithTrace(1, func(r trace.Record) error {
		recs = append(recs, r)
		return nil
	}))
	if _, err := NewRunner(c, opts...).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestCampaignTracingRecords is the deterministic end-to-end probe
// check: every trial yields a record, and any trial whose activations
// left tolerance did so first at exactly the injected layer and the
// transient strike position.
func TestCampaignTracingRecords(t *testing.T) {
	c := traceCampaign(t, faults.Comp1Bit)
	recs := collectTraces(t, c)
	if len(recs) != c.Trials {
		t.Fatalf("got %d trace records, want %d", len(recs), c.Trials)
	}
	seen := make([]bool, c.Trials)
	diverged, expAtSite := 0, 0
	for _, r := range recs {
		if r.Schema != trace.SchemaVersion {
			t.Fatalf("record schema %d, want %d", r.Schema, trace.SchemaVersion)
		}
		if r.Trial < 0 || r.Trial >= c.Trials || seen[r.Trial] {
			t.Fatalf("bad or duplicate trial index %d", r.Trial)
		}
		seen[r.Trial] = true
		if want := len(c.Suite.Instances[r.Instance].Prompt) + r.GenIter; r.StrikePos != want {
			t.Fatalf("trial %d strike pos %d, want prompt+iter %d", r.Trial, r.StrikePos, want)
		}
		if len(r.Spans) == 0 {
			t.Fatalf("trial %d carries no timing spans", r.Trial)
		}
		phases := map[trace.Phase]bool{}
		for _, sp := range r.Spans {
			phases[sp.Phase] = true
		}
		for _, p := range []trace.Phase{trace.PhasePrefill, trace.PhaseDecode, trace.PhaseClassify} {
			if !phases[p] {
				t.Fatalf("trial %d missing %s span", r.Trial, p)
			}
		}
		if r.FirstDivergence == nil {
			continue
		}
		diverged++
		// The decode replays the clean prefix bit-identically, so nothing
		// can diverge before the transient strike position. (The first
		// crossing of the *relative* tolerance may sit a layer or two past
		// the injection site when the site row's norm is large — e.g. a
		// small flip inside a wide gate_proj row — so the layer itself is
		// asserted via the at-site count below, not universally.)
		if r.FirstDivergence.Pos < r.StrikePos {
			t.Fatalf("trial %d diverged at pos %d, before strike pos %d",
				r.Trial, r.FirstDivergence.Pos, r.StrikePos)
		}
		if !r.Fired {
			t.Fatalf("trial %d diverged without firing", r.Trial)
		}
		if r.Compared == 0 {
			t.Fatalf("trial %d diverged with zero compared rows", r.Trial)
		}
		atSite := r.FirstDivergence.Layer == r.Layer && r.FirstDivergence.Pos == r.StrikePos
		if numerics.ClassifyBit(numerics.BF16, r.HighestBit) == numerics.ExponentBit && atSite {
			expAtSite++
		}
	}
	if diverged == 0 {
		t.Fatal("no trial diverged; the probe saw nothing")
	}
	if expAtSite == 0 {
		t.Fatal("no exponent-bit trial recorded its first divergence at the injection site")
	}
}

// TestTraceSampling pins the -trace-sample stride: with every=3, exactly
// the trials with index % 3 == 0 are traced, and telemetry counts them.
func TestTraceSampling(t *testing.T) {
	c := traceCampaign(t, faults.Comp1Bit)
	var recs []trace.Record
	tel := NewTelemetry()
	_, err := NewRunner(c,
		WithTelemetry(tel),
		WithTrace(3, func(r trace.Record) error {
			recs = append(recs, r)
			return nil
		}),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := (c.Trials + 2) / 3
	if len(recs) != want {
		t.Fatalf("sampled %d records, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Trial%3 != 0 {
			t.Fatalf("trial %d traced despite stride 3", r.Trial)
		}
	}
	if got := tel.Snapshot().TracedTrials; got != int64(want) {
		t.Fatalf("telemetry traced = %d, want %d", got, want)
	}
}

// TestTracingDoesNotChangeResult guards golden equivalence of the whole
// tracing layer: baseline capture hooks plus per-trial probes must leave
// every trial bit-identical to an untraced run.
func TestTracingDoesNotChangeResult(t *testing.T) {
	for _, fault := range []faults.Model{faults.Comp1Bit, faults.Mem2Bit} {
		t.Run(fault.String(), func(t *testing.T) {
			c := traceCampaign(t, fault)
			ref, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var res *Result
			res, err = NewRunner(c, WithTrace(1, nil)).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, ref, res)
		})
	}
}

// TestTraceIneligibleSuites: multiple-choice scoring and beam search have
// no per-position clean reference, so tracing must silently disable.
func TestTraceIneligibleSuites(t *testing.T) {
	mc := traceCampaign(t, faults.Comp1Bit)
	suite, err := tasks.NewMCSuite("arc", 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	mc.Model = testMCModel(t, model.QwenS)
	mc.Suite = suite
	if recs := collectTraces(t, mc); len(recs) != 0 {
		t.Fatalf("MC campaign produced %d trace records", len(recs))
	}

	beam := traceCampaign(t, faults.Comp1Bit)
	beam.Gen = gen.Settings{NumBeams: 3}
	if recs := collectTraces(t, beam); len(recs) != 0 {
		t.Fatalf("beam campaign produced %d trace records", len(recs))
	}
}

// TestMemoryFaultTracing: resident faults have no single strike position
// (StrikePos -1) and anchor their profile at the first divergence.
func TestMemoryFaultTracing(t *testing.T) {
	c := traceCampaign(t, faults.Mem2Bit)
	recs := collectTraces(t, c)
	if len(recs) != c.Trials {
		t.Fatalf("got %d records, want %d", len(recs), c.Trials)
	}
	diverged := 0
	for _, r := range recs {
		if r.StrikePos != -1 {
			t.Fatalf("memory-fault record has strike pos %d, want -1", r.StrikePos)
		}
		if r.FirstDivergence != nil {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("no memory-fault trial diverged")
	}
}

// TestPhaseHistograms checks the span → histogram plumbing: an ABFT
// campaign populates every phase, with per-trial counts for the
// non-token phases.
func TestPhaseHistograms(t *testing.T) {
	c := traceCampaign(t, faults.Comp1Bit)
	c.ABFT = &ABFTConfig{Policy: mitigate.PolicyCorrect}
	tel := NewTelemetry()
	if _, err := NewRunner(c, WithTelemetry(tel)).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := tel.Snapshot()
	if len(s.PhaseBucketBounds) == 0 {
		t.Fatal("no phase bucket bounds in snapshot")
	}
	byPhase := map[string]PhaseSnapshot{}
	for _, ps := range s.Phases {
		byPhase[ps.Phase] = ps
		var n int64
		for _, b := range ps.Buckets {
			n += b
		}
		if n != ps.Count {
			t.Fatalf("%s: buckets sum to %d, count %d", ps.Phase, n, ps.Count)
		}
		if len(ps.Buckets) != len(s.PhaseBucketBounds)+1 {
			t.Fatalf("%s: %d buckets for %d bounds", ps.Phase, len(ps.Buckets), len(s.PhaseBucketBounds))
		}
	}
	for _, p := range []trace.Phase{
		trace.PhasePrefill, trace.PhaseDecode,
		trace.PhaseABFTCheck, trace.PhaseMitigate, trace.PhaseClassify,
	} {
		ps, ok := byPhase[string(p)]
		if !ok {
			t.Fatalf("phase %s has no observations", p)
		}
		if ps.Count != int64(c.Trials) {
			t.Fatalf("phase %s count = %d, want %d", p, ps.Count, c.Trials)
		}
	}
	if _, ok := byPhase[string(trace.PhaseDecodeToken)]; !ok {
		t.Fatal("decode_token histogram empty")
	}
}

// TestResumeTelemetryCumulative is the resume-telemetry regression test:
// counters restored from a checkpoint must continue cumulatively instead
// of restarting from zero, with the restored count reported separately.
func TestResumeTelemetryCumulative(t *testing.T) {
	c := traceCampaign(t, faults.Comp1Bit)
	ref, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	refFired := 0
	for _, tr := range ref.Trials {
		if tr.Fired {
			refFired++
		}
	}
	refTally := ref.Tally()

	save := func(k int) string {
		ck := &Checkpoint{Fingerprint: c.Fingerprint()}
		for i := 0; i < k; i++ {
			ck.Indices = append(ck.Indices, i)
			ck.Trials = append(ck.Trials, ref.Trials[i])
		}
		path := filepath.Join(t.TempDir(), "tel.ckpt")
		if err := ck.Save(path); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// Partial resume: totals must match the uninterrupted run.
	k := c.Trials / 2
	tel := NewTelemetry()
	if _, err := NewRunner(c, WithTelemetry(tel)).Resume(context.Background(), save(k)); err != nil {
		t.Fatal(err)
	}
	s := tel.Snapshot()
	if s.DoneTrials != c.Trials || s.ResumedTrials != k {
		t.Fatalf("resumed snapshot done/resumed = %d/%d, want %d/%d",
			s.DoneTrials, s.ResumedTrials, c.Trials, k)
	}
	if s.Fired != refFired {
		t.Fatalf("resumed fired = %d, want cumulative %d", s.Fired, refFired)
	}
	if s.Masked != refTally.Masked || s.Subtle != refTally.Subtle || s.Distorted != refTally.Distorted {
		t.Fatalf("resumed tally %d/%d/%d, want %d/%d/%d",
			s.Masked, s.Subtle, s.Distorted, refTally.Masked, refTally.Subtle, refTally.Distorted)
	}
	if s.FiredRate != float64(refFired)/float64(c.Trials) {
		t.Fatalf("resumed fired rate = %v", s.FiredRate)
	}

	// Fully-resumed campaign: nothing executed, so the session throughput
	// must stay zero while the cumulative counters report the whole run.
	tel2 := NewTelemetry()
	if _, err := NewRunner(c, WithTelemetry(tel2)).Resume(context.Background(), save(c.Trials)); err != nil {
		t.Fatal(err)
	}
	s2 := tel2.Snapshot()
	if s2.DoneTrials != c.Trials || s2.ResumedTrials != c.Trials {
		t.Fatalf("full-resume done/resumed = %d/%d", s2.DoneTrials, s2.ResumedTrials)
	}
	if s2.TrialsPerSec != 0 {
		t.Fatalf("full-resume session rate = %v, want 0 (no trials executed)", s2.TrialsPerSec)
	}
	if s2.Fired != refFired {
		t.Fatalf("full-resume fired = %d, want %d", s2.Fired, refFired)
	}
}

// TestTraceSinkErrorStopsCampaign: a failing trace sink must abort the
// run like any other infrastructure error.
func TestTraceSinkErrorStopsCampaign(t *testing.T) {
	c := traceCampaign(t, faults.Comp1Bit)
	sinkErr := errTest("sink failed")
	_, err := NewRunner(c, WithTrace(1, func(trace.Record) error {
		return sinkErr
	})).Run(context.Background())
	if err == nil {
		t.Fatal("sink error did not fail the campaign")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
