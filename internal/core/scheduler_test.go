package core

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/tasks"
)

// batchEquivalent runs the campaign serially and through the
// continuous-batching scheduler at width n, requiring bit-identical
// baselines and trial records. This is the scheduler's contract: batching
// may change only wall-clock, never a single trial's outcome.
func batchEquivalent(t *testing.T, c Campaign, n int) {
	t.Helper()
	ctx := context.Background()

	serial := c
	serial.BatchDecode = 0
	ref, err := serial.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	batched := c
	batched.BatchDecode = n
	got, err := batched.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, got)
}

// TestBatchedGoldenEquivalence sweeps batched-vs-serial equivalence
// across architecture × fault model × ABFT configuration. The memory-
// fault and multiple-choice arms are ineligible for batching and must
// come out identical through the automatic serial fallback.
func TestBatchedGoldenEquivalence(t *testing.T) {
	suite := tasks.NewSelfRefSuite("batch-golden", 11, 4, 20, 9, []metrics.Kind{metrics.KindBLEU})
	mcSuite, err := tasks.NewMCSuite("arc", 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		moe   bool
		suite *tasks.Suite
		fault faults.Model
		abft  *ABFTConfig
	}{
		{"dense-comp1", false, suite, faults.Comp1Bit, nil},
		{"dense-comp2-abft-site", false, suite, faults.Comp2Bit, &ABFTConfig{}},
		{"dense-comp2-abft-all-correct", false, suite, faults.Comp2Bit,
			&ABFTConfig{Policy: mitigate.PolicyCorrect, AllLayers: true}},
		{"moe-comp2", true, suite, faults.Comp2Bit, nil},
		{"moe-comp1-abft-site", true, suite, faults.Comp1Bit, &ABFTConfig{}},
		{"dense-mem2-fallback", false, suite, faults.Mem2Bit, nil},
		{"moe-mem2-abft-fallback", true, suite, faults.Mem2Bit, &ABFTConfig{}},
		{"mc-comp2-fallback", false, mcSuite, faults.Comp2Bit, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			batchEquivalent(t, Campaign{
				Model:  goldenModel(t, model.QwenS, tc.moe),
				Suite:  tc.suite,
				Fault:  tc.fault,
				Trials: 12,
				Seed:   41,
				ABFT:   tc.abft,
			}, 8)
		})
	}
}

// TestBatchedFirstTokenFinish covers trials that finish before a single
// decode step runs: a zero-token budget retires at admission (never
// occupying a batch row), and a one-token budget retires on the first
// stacked step. Both must match the serial path exactly.
func TestBatchedFirstTokenFinish(t *testing.T) {
	suite := tasks.NewSelfRefSuite("batch-first", 13, 3, 16, 6, []metrics.Kind{metrics.KindBLEU})
	suite.Instances[0].MaxNew = 0
	suite.Instances[1].MaxNew = 1
	batchEquivalent(t, Campaign{
		Model:  goldenModel(t, model.QwenS, false),
		Suite:  suite,
		Fault:  faults.Comp2Bit,
		Trials: 9,
		Seed:   23,
	}, 4)
}

// TestBatchedMitigationSkipMidBatch forces the ABFT tolerance below the
// kernel's accumulation noise under the correct-skip policy, so rows are
// flagged and zeroed on nearly every protected check mid-batch. The
// mitigated (zeroed) activations feed subsequent stacked steps, and
// every trial must still be bit-identical to its serial run.
func TestBatchedMitigationSkipMidBatch(t *testing.T) {
	suite := tasks.NewSelfRefSuite("batch-skip", 17, 3, 16, 7, []metrics.Kind{metrics.KindBLEU})
	batchEquivalent(t, Campaign{
		Model:  goldenModel(t, model.QwenS, false),
		Suite:  suite,
		Fault:  faults.Comp2Bit,
		Trials: 8,
		Seed:   29,
		ABFT:   &ABFTConfig{Tol: 1e-12, Policy: mitigate.PolicyCorrectOrSkip},
	}, 4)
}

// TestBatchedRaggedRetirement drains a batch down to a single in-flight
// row: instances with very different token budgets retire at very
// different steps, and with fewer trials than the batch width there is
// nothing left to admit. Also pins the occupancy telemetry: steps carry
// between 1 and BatchDecode rows.
func TestBatchedRaggedRetirement(t *testing.T) {
	suite := tasks.NewSelfRefSuite("batch-ragged", 19, 5, 14, 4, []metrics.Kind{metrics.KindBLEU})
	for i := range suite.Instances {
		suite.Instances[i].MaxNew = 1 + 5*i // 1, 6, 11, 16, 21
	}
	c := Campaign{
		Model:  goldenModel(t, model.QwenS, false),
		Suite:  suite,
		Fault:  faults.Comp2Bit,
		Trials: 5,
		Seed:   37,
	}
	serial := c
	ref, err := serial.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	batched := c
	batched.BatchDecode = 8
	tel := NewTelemetry()
	got, err := NewRunner(batched, WithTelemetry(tel)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, got)

	s := tel.Snapshot()
	if s.DecodeBatchSteps == 0 {
		t.Fatal("batched campaign recorded no stacked decode steps")
	}
	if s.BatchOccupancy < 1 || s.BatchOccupancy > 8 {
		t.Fatalf("batch occupancy %v outside [1, 8]", s.BatchOccupancy)
	}
	if s.DecodeBatchRows < s.DecodeBatchSteps {
		t.Fatalf("batch rows %d < steps %d", s.DecodeBatchRows, s.DecodeBatchSteps)
	}
	// The serial run must not touch the batch counters.
	tel2 := NewTelemetry()
	if _, err := NewRunner(serial, WithTelemetry(tel2)).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s2 := tel2.Snapshot(); s2.DecodeBatchSteps != 0 || s2.BatchOccupancy != 0 {
		t.Fatalf("serial campaign recorded batch occupancy: %+v", s2)
	}
}

// TestBatchedInterruptThenResume interrupts a batched campaign with a
// partially drained batch in flight, then resumes from the checkpoint at
// a different batch width: BatchDecode is excluded from the fingerprint
// (batching is observationally inert, like tracing), so the merged
// Result must be bit-identical to an uninterrupted serial run.
//
// The gating mirrors TestRunnerInterruptThenResume: ExtraHook install #1
// is the baseline and installs #2..#5 the first batch of trials, which
// run free; later admissions block at their first layer output until the
// consumer has cancelled, pinning "abandoned in-flight trials are simply
// re-executed on resume" deterministically.
func TestBatchedInterruptThenResume(t *testing.T) {
	c := Campaign{
		Model:   goldenModel(t, model.QwenS, false),
		Suite:   tasks.NewSelfRefSuite("batch-intr", 31, 3, 16, 7, []metrics.Kind{metrics.KindBLEU}),
		Fault:   faults.Comp2Bit,
		Trials:  24,
		Seed:    43,
		Workers: 1,
	}
	c.ExtraHook = func() model.Hook {
		return func(model.LayerRef, int, []float32) {}
	}
	ref, err := NewRunner(c).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	var installs atomic.Int32
	gated := c
	gated.BatchDecode = 4
	gated.ExtraHook = func() model.Hook {
		wait := installs.Add(1) > 5
		return func(model.LayerRef, int, []float32) {
			if wait {
				wait = false
				<-release
			}
		}
	}

	path := filepath.Join(t.TempDir(), "batch.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRunner(gated, WithCheckpoint(path), WithCheckpointEvery(1))

	var final CampaignDone
	trials := 0
	for ev := range r.Stream(ctx) {
		switch e := ev.(type) {
		case TrialDone:
			trials++
			if trials == 1 {
				cancel()
				close(release)
			}
		case CampaignDone:
			final = e
		}
	}
	if !errors.Is(final.Err, context.Canceled) {
		t.Fatalf("interrupted stream err = %v, want context.Canceled", final.Err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Done() < 1 || ck.Done() >= c.Trials {
		t.Fatalf("checkpoint holds %d trials, want a partial count", ck.Done())
	}

	// Resume at a different batch width than the interrupted run used.
	resumed := c
	resumed.BatchDecode = 8
	res, err := NewRunner(resumed).Resume(context.Background(), path)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, res)
}

// TestBatchEligible pins the serial-fallback conditions.
func TestBatchEligible(t *testing.T) {
	gen1 := gen.Settings{NumBeams: 1}
	genSuite := tasks.NewSelfRefSuite("elig-gen", 3, 2, 12, 4, []metrics.Kind{metrics.KindBLEU})
	mcSuite, err := tasks.NewMCSuite("arc", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := Campaign{Suite: genSuite, Fault: faults.Comp2Bit, BatchDecode: 8}
	if !c.batchEligible(gen1) {
		t.Fatal("generative computational greedy campaign must be batch-eligible")
	}
	if (Campaign{Suite: genSuite, Fault: faults.Comp2Bit, BatchDecode: 1}).batchEligible(gen1) {
		t.Fatal("BatchDecode 1 means serial")
	}
	if (Campaign{Suite: genSuite, Fault: faults.Mem2Bit, BatchDecode: 8}).batchEligible(gen1) {
		t.Fatal("memory faults must fall back to serial")
	}
	if (Campaign{Suite: mcSuite, Fault: faults.Comp2Bit, BatchDecode: 8}).batchEligible(gen1) {
		t.Fatal("multiple-choice must fall back to serial")
	}
	if c.batchEligible(gen.Settings{NumBeams: 3}) {
		t.Fatal("beam search must fall back to serial")
	}
	noReuse := c
	noReuse.noPrefixReuse = true
	if noReuse.batchEligible(gen1) {
		t.Fatal("seed-path campaigns must fall back to serial")
	}
}

// TestPoolShape pins the worker/thread split against the in-flight
// shape: batched workers carry up to batch trials each, so the pool is
// capped by ceil(pending/batch) and the freed cores flow back into each
// remaining worker's matmul thread share.
func TestPoolShape(t *testing.T) {
	cases := []struct {
		name                             string
		pending, requested, batch, procs int
		workers, threads                 int
	}{
		{"serial-full-machine", 100, 0, 1, 8, 8, 1},
		{"serial-few-pending", 4, 0, 1, 8, 4, 2},
		{"serial-requested", 100, 2, 1, 8, 2, 4},
		{"batch-caps-workers", 100, 0, 16, 8, 7, 1},
		{"batch-one-worker-enough", 8, 0, 8, 8, 1, 8},
		{"batch-reclaims-threads", 16, 0, 8, 8, 2, 4},
		{"batch-respects-request", 16, 1, 8, 8, 1, 8},
		{"batch-more-requested-than-needed", 8, 4, 8, 8, 1, 8},
		{"single-core", 100, 0, 8, 1, 1, 1},
		{"pending-below-everything", 1, 4, 8, 8, 1, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, th := poolShape(tc.pending, tc.requested, tc.batch, tc.procs)
			if w != tc.workers || th != tc.threads {
				t.Fatalf("poolShape(%d, %d, %d, %d) = (%d, %d), want (%d, %d)",
					tc.pending, tc.requested, tc.batch, tc.procs, w, th, tc.workers, tc.threads)
			}
		})
	}
}
