package core

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/mitigate"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
)

func abftCampaign(t *testing.T, fm faults.Model, cfg *ABFTConfig) Campaign {
	t.Helper()
	c := Campaign{
		Model:   goldenModel(t, model.QwenS, false),
		Suite:   tasks.NewSelfRefSuite("abft-campaign", 15, 3, 18, 8, []metrics.Kind{metrics.KindBLEU}),
		Fault:   fm,
		Trials:  48,
		Seed:    31,
		Workers: 2,
		ABFT:    cfg,
	}
	return c
}

// exponentMSB is the top exponent bit of the model's storage format — the
// flip that scales a value by 2^128 (or collapses it toward zero), which
// the checksum must always see.
func exponentMSB(dt numerics.DType) int { return dt.Bits() - 2 }

func TestCampaignABFTDetection(t *testing.T) {
	c := abftCampaign(t, faults.Comp2Bit, &ABFTConfig{})
	tel := NewTelemetry()
	res, err := NewRunner(c, WithTelemetry(tel)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	msb := exponentMSB(c.Model.Cfg.DType)
	for i, tr := range res.Trials {
		if tr.Detection == nil {
			t.Fatalf("trial %d has no detection record", i)
		}
		if tr.Detection.Checks == 0 {
			t.Fatalf("trial %d ran zero checks", i)
		}
		if tr.Detection.FalsePositives != 0 {
			t.Fatalf("trial %d (%v): %d false positives", i, tr.Site, tr.Detection.FalsePositives)
		}
		if tr.Fired && tr.Site.HighestBit() == msb && !tr.Detection.AtSite {
			t.Errorf("trial %d: exponent-MSB fault %v escaped detection", i, tr.Site)
		}
	}

	s := res.Detection()
	if s.Trials != c.Trials {
		t.Fatalf("detection summary covers %d/%d trials", s.Trials, c.Trials)
	}
	if s.Detected+s.Missed != s.Fired {
		t.Fatalf("detected %d + missed %d != fired %d", s.Detected, s.Missed, s.Fired)
	}
	if s.Fired > 0 && s.Detected == 0 {
		t.Fatal("no fired fault was ever detected")
	}
	if r := s.Recall(); r < 0 || r > 1 {
		t.Fatalf("recall %f out of range", r)
	}

	// Per-bit grouping partitions the fired trials.
	byBit := res.DetectionByBit()
	firedSum, detSum := 0, 0
	for _, b := range byBit {
		firedSum += b.Fired
		detSum += b.Detected
	}
	if firedSum != s.Fired || detSum != s.Detected {
		t.Fatalf("DetectionByBit sums %d/%d, summary %d/%d", firedSum, detSum, s.Fired, s.Detected)
	}

	// Telemetry mirrors the result-side aggregation.
	snap := tel.Snapshot()
	if snap.AbftChecks != s.Checks || snap.AbftFlagged != s.Flagged ||
		snap.AbftDetected != s.Detected || snap.AbftMissed != s.Missed ||
		snap.AbftFalsePositives != s.FalsePositives || snap.AbftCascaded != s.Cascaded {
		t.Fatalf("telemetry %+v disagrees with summary %+v", snap, s)
	}
}

// TestCampaignABFTCorrection runs the same campaign detect-only and with
// recompute-correction: every corrected computational fault re-executes
// the clean GEMM on the same input, so the corrected trials must be
// bit-identical to fault-free (Masked, output unchanged).
func TestCampaignABFTCorrection(t *testing.T) {
	detect, err := abftCampaign(t, faults.Comp2Bit, &ABFTConfig{}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	correct, err := abftCampaign(t, faults.Comp2Bit, &ABFTConfig{Policy: mitigate.PolicyCorrect}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Identical sampling schedule: site streams must match.
	for i := range detect.Trials {
		if detect.Trials[i].Site.String() != correct.Trials[i].Site.String() {
			t.Fatalf("trial %d sites diverge: %v vs %v", i, detect.Trials[i].Site, correct.Trials[i].Site)
		}
	}

	corrected := 0
	for i, tr := range correct.Trials {
		if tr.Detection == nil || tr.Detection.Corrected == 0 {
			continue
		}
		corrected++
		if tr.Outcome.Changed {
			t.Errorf("trial %d (%v): corrected yet output changed", i, tr.Site)
		}
	}
	if corrected == 0 {
		t.Fatal("correction campaign never corrected anything")
	}
	if dm, cm := detect.Tally().Masked, correct.Tally().Masked; cm < dm {
		t.Fatalf("correction lowered masked count: %d -> %d", dm, cm)
	}
	if s := correct.Detection(); s.Skipped != 0 {
		t.Fatalf("PolicyCorrect skipped %d rows", s.Skipped)
	}
}

// TestCampaignABFTMemorySkip exercises the full escalation on persistent
// weight faults: recompute re-reads the corrupted weight, verification
// fails, and the detector falls back to zeroing the checked row.
func TestCampaignABFTMemorySkip(t *testing.T) {
	res, err := abftCampaign(t, faults.Mem2Bit, &ABFTConfig{Policy: mitigate.PolicyCorrectOrSkip}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Detection()
	if s.Trials != 48 {
		t.Fatalf("detection records on %d/48 trials", s.Trials)
	}
	if s.Flagged > 0 && s.Skipped == 0 {
		t.Fatal("memory faults were flagged but never skipped: recompute cannot succeed against a resident weight fault")
	}
	if s.Corrected != 0 {
		t.Fatalf("%d memory faults 'corrected' — recompute used the corrupted weight and still verified", s.Corrected)
	}
	if s.FalsePositives != 0 {
		t.Fatalf("%d false positives", s.FalsePositives)
	}
}

func TestFingerprintSeparatesABFTConfigs(t *testing.T) {
	base := abftCampaign(t, faults.Comp2Bit, nil)
	seen := map[Fingerprint]string{}
	for _, tc := range []struct {
		name string
		cfg  *ABFTConfig
	}{
		{"off", nil},
		{"detect", &ABFTConfig{}},
		{"correct", &ABFTConfig{Policy: mitigate.PolicyCorrect}},
		{"skip", &ABFTConfig{Policy: mitigate.PolicyCorrectOrSkip}},
		{"all-layers", &ABFTConfig{AllLayers: true}},
		{"loose-tol", &ABFTConfig{Tol: 0.5}},
	} {
		c := base
		c.ABFT = tc.cfg
		fp := c.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("ABFT configs %q and %q share a fingerprint", prev, tc.name)
		}
		seen[fp] = tc.name
	}
}

// TestCheckpointCarriesDetection round-trips a checkpointed ABFT campaign
// through disk and confirms resuming restores the Detection records, while
// a campaign with a different ABFT config refuses the checkpoint.
func TestCheckpointCarriesDetection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "abft.ckpt")
	c := abftCampaign(t, faults.Comp2Bit, &ABFTConfig{})
	ref, err := NewRunner(c, WithCheckpoint(path)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Done() != c.Trials {
		t.Fatalf("checkpoint holds %d/%d trials", ck.Done(), c.Trials)
	}
	resumed, err := NewRunner(c, WithResumeFrom(ck)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Trials {
		a, b := ref.Trials[i].Detection, resumed.Trials[i].Detection
		if a == nil || b == nil {
			t.Fatalf("trial %d detection lost in round trip (%v vs %v)", i, a, b)
		}
		if *a != *b {
			t.Fatalf("trial %d detection differs after resume: %+v vs %+v", i, *a, *b)
		}
	}

	other := c
	other.ABFT = &ABFTConfig{Policy: mitigate.PolicyCorrect}
	if err := ck.Matches(other); err == nil {
		t.Fatal("checkpoint accepted by a campaign with a different ABFT policy")
	}
	off := c
	off.ABFT = nil
	if err := ck.Matches(off); err == nil {
		t.Fatal("ABFT checkpoint accepted by an ABFT-off campaign")
	}
}
