package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/outcome"
	"repro/internal/tasks"
)

func checkpointCampaign(t *testing.T) Campaign {
	t.Helper()
	return Campaign{
		Model:  goldenModel(t, model.QwenS, false),
		Suite:  tasks.NewSelfRefSuite("ckpt", 3, 2, 16, 6, []metrics.Kind{metrics.KindBLEU}),
		Fault:  faults.Comp2Bit,
		Trials: 6,
		Seed:   11,
	}
}

// TestCheckpointRoundtrip saves and reloads a checkpoint with fully
// populated trial records and requires a deep-equal roundtrip.
func TestCheckpointRoundtrip(t *testing.T) {
	c := checkpointCampaign(t)
	ck := &Checkpoint{
		Fingerprint: c.Fingerprint(),
		Indices:     []int{4, 0, 2},
		Trials: []Trial{
			{
				Site:     faults.Site{Fault: faults.Comp2Bit, Row: 3, Col: 1, Bits: []int{7}, GenIter: 2},
				Instance: 1,
				Fired:    true,
				Outcome:  outcome.Analysis{Class: outcome.SDCSubtle, Changed: true, LengthRatio: 1.5},
				AnswerOK: false,
				Metrics:  map[metrics.Kind]float64{metrics.KindBLEU: 0.25},
				Steps:    9,
			},
			{
				Site:    faults.Site{Fault: faults.Comp2Bit, Bits: []int{1, 2}},
				Fired:   false,
				Metrics: map[metrics.Kind]float64{metrics.KindBLEU: 1},
				Steps:   7,
			},
			{
				Site:          faults.Site{Fault: faults.Comp2Bit, Bits: []int{30}},
				Fired:         true,
				ExpertChanged: true,
				Metrics:       map[metrics.Kind]float64{metrics.KindBLEU: 0},
				Steps:         3,
			},
		},
	}
	path := filepath.Join(t.TempDir(), "rt.ckpt")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("roundtrip differs:\nwant %+v\ngot  %+v", ck, got)
	}
	if got.Done() != 3 {
		t.Fatalf("Done() = %d, want 3", got.Done())
	}
	if err := got.Matches(c); err != nil {
		t.Fatalf("own-campaign Matches failed: %v", err)
	}
}

// TestCheckpointMismatch requires fingerprint drift — any knob that
// changes trial sampling or classification — to fail Matches with the
// typed sentinel.
func TestCheckpointMismatch(t *testing.T) {
	c := checkpointCampaign(t)
	ck := &Checkpoint{Fingerprint: c.Fingerprint()}

	cases := map[string]func(*Campaign){
		"seed":       func(c *Campaign) { c.Seed++ },
		"trials":     func(c *Campaign) { c.Trials++ },
		"fault":      func(c *Campaign) { c.Fault = faults.Mem2Bit },
		"beams":      func(c *Campaign) { c.Gen.NumBeams = 4 },
		"thresholds": func(c *Campaign) { c.Thresholds.LengthExplosion = 123 },
		"reasoning":  func(c *Campaign) { c.ReasoningOnly = true },
		"filter":     func(c *Campaign) { c.Filter = faults.GateOnly },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			mc := c
			mutate(&mc)
			if err := ck.Matches(mc); !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("mutated %s: err = %v, want ErrCheckpointMismatch", name, err)
			}
		})
	}
}

// TestCheckpointCorrupt covers the decode failure modes: garbage bytes,
// a missing file, and an index/trial length mismatch.
func TestCheckpointCorrupt(t *testing.T) {
	dir := t.TempDir()

	garbage := filepath.Join(dir, "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(garbage); err == nil {
		t.Fatal("garbage checkpoint must fail to load")
	}

	if _, err := LoadCheckpoint(filepath.Join(dir, "absent.ckpt")); err == nil {
		t.Fatal("missing checkpoint must fail to load")
	}

	skewed := filepath.Join(dir, "skewed.ckpt")
	ck := &Checkpoint{Indices: []int{0, 1}, Trials: []Trial{{}}}
	if err := ck.Save(skewed); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(skewed); err == nil {
		t.Fatal("index/trial length skew must fail validation")
	}
}

// TestCheckpointResumeMismatchRefused requires Resume to refuse a
// checkpoint from a different campaign.
func TestCheckpointResumeMismatchRefused(t *testing.T) {
	c := checkpointCampaign(t)
	other := c
	other.Seed++
	ck := &Checkpoint{Fingerprint: other.Fingerprint()}
	path := filepath.Join(t.TempDir(), "other.ckpt")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	_, err := NewRunner(c).Resume(context.Background(), path)
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("cross-campaign resume err = %v, want ErrCheckpointMismatch", err)
	}
}
