package core

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"os"
)

// Fingerprint pins a checkpoint to the campaign configuration that
// produced it. Two campaigns with equal fingerprints sample identical
// injection sites and produce bit-identical trials (per-trial Split(t)
// seeding), so resuming across them is sound.
//
// Tracing (Runner.WithTrace) is deliberately not part of the
// fingerprint: probes observe trials without altering them, so a
// resumed campaign may turn tracing on, off, or change its sampling
// stride — only the trace file's coverage changes, never the Result.
type Fingerprint struct {
	// Model and Suite are the human-readable identity half.
	Model string
	Suite string
	Fault string
	// Trials and Seed pin the sampling schedule.
	Trials int
	Seed   uint64
	// Hash folds the remaining behavior-affecting knobs: datatype,
	// instance count, decoding settings, thresholds, reasoning-only
	// mode, and the presence of a target filter / extra hook (function
	// values cannot be hashed; resume assumes the same binary and
	// flags supply the same implementations).
	Hash uint64
}

// Fingerprint derives the campaign's resume identity.
func (c Campaign) Fingerprint() Fingerprint {
	h := fnv.New64a()
	abftKey := "abft-off"
	if c.ABFT != nil {
		// A correcting policy changes trial outcomes, and tolerance /
		// coverage change Detection records, so resume across different
		// ABFT configurations must be refused.
		abftKey = fmt.Sprintf("abft:%g:%v:%t", c.ABFT.Tol, c.ABFT.Policy, c.ABFT.AllLayers)
	}
	fmt.Fprintf(h, "%v|%d|%d|%d|%d|%v|%d|%v|%v|%v|%v|%s",
		c.Model.Cfg.DType, c.Model.Cfg.MaxSeq,
		len(c.Suite.Instances), c.Gen.NumBeams, c.Gen.MaxNewTokens,
		c.Thresholds, c.Gen.StopToken,
		c.ReasoningOnly, c.Filter != nil, c.Check != nil, c.ExtraHook != nil,
		abftKey)
	return Fingerprint{
		Model:  c.Model.Cfg.Name,
		Suite:  c.Suite.Name,
		Fault:  c.Fault.String(),
		Trials: c.Trials,
		Seed:   c.Seed,
		Hash:   h.Sum64(),
	}
}

// Checkpoint is the durable record of a partially (or fully) completed
// campaign: the completed Trial records keyed by trial index, plus the
// campaign fingerprint that guards resumption. Serialized with gob.
type Checkpoint struct {
	Fingerprint Fingerprint
	// Indices[i] is the trial index of Trials[i]; completion order is
	// preserved, so the file is append-consistent across rewrites.
	Indices []int
	Trials  []Trial
}

// Done returns the number of completed trials in the checkpoint.
func (ck *Checkpoint) Done() int { return len(ck.Indices) }

// Matches verifies the checkpoint belongs to campaign c.
func (ck *Checkpoint) Matches(c Campaign) error {
	if got := c.Fingerprint(); got != ck.Fingerprint {
		return fmt.Errorf("%w: checkpoint is %s/%s/%s trials=%d seed=%d, campaign is %s/%s/%s trials=%d seed=%d",
			ErrCheckpointMismatch,
			ck.Fingerprint.Model, ck.Fingerprint.Suite, ck.Fingerprint.Fault, ck.Fingerprint.Trials, ck.Fingerprint.Seed,
			got.Model, got.Suite, got.Fault, got.Trials, got.Seed)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: open checkpoint: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint %s: %w", path, err)
	}
	if len(ck.Indices) != len(ck.Trials) {
		return nil, fmt.Errorf("core: checkpoint %s corrupt: %d indices vs %d trials",
			path, len(ck.Indices), len(ck.Trials))
	}
	return &ck, nil
}

// Save writes the checkpoint atomically (temp file + rename), so an
// interrupt during the write never corrupts the previous checkpoint.
func (ck *Checkpoint) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: encode checkpoint %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: close checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: commit checkpoint %s: %w", path, err)
	}
	return nil
}
