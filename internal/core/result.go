package core

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// MetricMean returns the mean of a metric over all trials — the
// P_fault_injected numerator.
func (r *Result) MetricMean(kind metrics.Kind) float64 {
	var sum float64
	n := 0
	for _, t := range r.Trials {
		if v, ok := t.Metrics[kind]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Normalized returns the normalized performance for a metric with its
// Katz log-transform 95% interval (§3.3.3).
func (r *Result) Normalized(kind metrics.Kind) stats.Ratio {
	return stats.NormalizedPerformance(
		r.MetricMean(kind), r.Baseline.MetricMeans[kind],
		len(r.Trials), len(r.Baseline.Instances))
}

// PrimaryMetric returns the suite's first metric kind.
func (r *Result) PrimaryMetric() metrics.Kind {
	return r.Campaign.Suite.Metrics[0]
}

// NormalizedPrimary is Normalized over the suite's primary metric.
func (r *Result) NormalizedPrimary() stats.Ratio {
	return r.Normalized(r.PrimaryMetric())
}

// MeanNormalized averages the normalized performance over every metric
// of the suite (the per-task bars of Figure 3 average a task's metrics).
func (r *Result) MeanNormalized() float64 {
	var sum float64
	for _, k := range r.Campaign.Suite.Metrics {
		sum += r.Normalized(k).Value
	}
	return sum / float64(len(r.Campaign.Suite.Metrics))
}

// Tally returns the outcome class counts.
func (r *Result) Tally() outcome.Tally {
	var t outcome.Tally
	for _, tr := range r.Trials {
		t.Add(tr.Outcome)
	}
	return t
}

// MaskedRate is the fraction of trials whose answer matched the
// fault-free execution (the Masked outcome of §3.2).
func (r *Result) MaskedRate() float64 {
	t := r.Tally()
	if t.Total() == 0 {
		return 0
	}
	return float64(t.Masked) / float64(t.Total())
}

// FiredRate is the fraction of trials whose fault actually struck.
func (r *Result) FiredRate() float64 {
	n := 0
	for _, t := range r.Trials {
		if t.Fired {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}

// ExpertChangedRate is the fraction of trials whose MoE expert-selection
// trace changed (Figure 15's first bar).
func (r *Result) ExpertChangedRate() float64 {
	n := 0
	for _, t := range r.Trials {
		if t.ExpertChanged {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}

// OutputChangedRate is the fraction of trials whose output tokens changed
// relative to the baseline.
func (r *Result) OutputChangedRate() float64 {
	n := 0
	for _, t := range r.Trials {
		if t.Outcome.Changed {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}

// BitBucket aggregates outcomes of trials grouped by the highest flipped
// bit position (Figures 9–10).
type BitBucket struct {
	Bit       int
	Trials    int
	Subtle    int
	Distorted int
}

// BitBreakdown returns per-bit-position outcome buckets sorted by bit.
func (r *Result) BitBreakdown() []BitBucket {
	byBit := map[int]*BitBucket{}
	for _, t := range r.Trials {
		hb := t.Site.HighestBit()
		b := byBit[hb]
		if b == nil {
			b = &BitBucket{Bit: hb}
			byBit[hb] = b
		}
		b.Trials++
		switch t.Outcome.Class {
		case outcome.SDCSubtle:
			b.Subtle++
		case outcome.SDCDistorted:
			b.Distorted++
		}
	}
	out := make([]BitBucket, 0, len(byBit))
	for _, b := range byBit {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bit < out[j].Bit })
	return out
}

// BitProportions returns, per bit position, the share of all SDCs of the
// given class contributed by that bit — the y-axis of Figures 9–10.
func (r *Result) BitProportions(class outcome.Class) map[int]float64 {
	total := 0
	counts := map[int]int{}
	for _, t := range r.Trials {
		if t.Outcome.Class != class {
			continue
		}
		counts[t.Site.HighestBit()]++
		total++
	}
	out := make(map[int]float64, len(counts))
	for bit, n := range counts {
		if total > 0 {
			out[bit] = float64(n) / float64(total)
		}
	}
	return out
}

// DetectionSummary aggregates the per-trial ABFT verdicts of a campaign
// run with Campaign.ABFT.
type DetectionSummary struct {
	// Trials counts trials carrying a Detection record; Fired those whose
	// fault struck.
	Trials, Fired int
	// Detected and Missed split the fired trials by whether the checker
	// flagged the injection site.
	Detected, Missed int
	// FalsePositives and Cascaded sum the per-trial noise flags and
	// downstream-propagation flags.
	FalsePositives, Cascaded int
	// Corrected and Skipped sum the corrective actions; Checks and
	// Flagged the raw check counts.
	Corrected, Skipped, Checks, Flagged int
}

// Recall is the detection recall over fired trials.
func (s DetectionSummary) Recall() float64 {
	if s.Fired == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Fired)
}

// Detection folds every trial's ABFT record into campaign totals.
func (r *Result) Detection() DetectionSummary {
	var s DetectionSummary
	for _, t := range r.Trials {
		d := t.Detection
		if d == nil {
			continue
		}
		s.Trials++
		if t.Fired {
			s.Fired++
			if d.AtSite {
				s.Detected++
			} else {
				s.Missed++
			}
		}
		s.FalsePositives += d.FalsePositives
		s.Cascaded += d.Cascaded
		s.Corrected += d.Corrected
		s.Skipped += d.Skipped
		s.Checks += d.Checks
		s.Flagged += d.Flagged
	}
	return s
}

// BitRecall is the detection outcome of fired trials whose fault's
// highest flipped bit landed on Bit — the x-axis of the fig_abft
// recall-vs-bit-position figure.
type BitRecall struct {
	Bit      int
	Fired    int
	Detected int
}

// DetectionByBit groups fired trials by highest flipped bit, sorted by
// bit position.
func (r *Result) DetectionByBit() []BitRecall {
	byBit := map[int]*BitRecall{}
	for _, t := range r.Trials {
		if t.Detection == nil || !t.Fired {
			continue
		}
		hb := t.Site.HighestBit()
		b := byBit[hb]
		if b == nil {
			b = &BitRecall{Bit: hb}
			byBit[hb] = b
		}
		b.Fired++
		if t.Detection.AtSite {
			b.Detected++
		}
	}
	out := make([]BitRecall, 0, len(byBit))
	for _, b := range byBit {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bit < out[j].Bit })
	return out
}

// MeanSteps returns the average decode-step count per trial (the runtime
// proxy of Figure 19).
func (r *Result) MeanSteps() float64 {
	var sum float64
	for _, t := range r.Trials {
		sum += float64(t.Steps)
	}
	return sum / float64(len(r.Trials))
}

// GoldAccuracy is the trial accuracy against gold answers.
func (r *Result) GoldAccuracy() float64 {
	n := 0
	for _, t := range r.Trials {
		if t.AnswerOK {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}
