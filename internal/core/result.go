package core

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/outcome"
	"repro/internal/stats"
)

// MetricMean returns the mean of a metric over all trials — the
// P_fault_injected numerator.
func (r *Result) MetricMean(kind metrics.Kind) float64 {
	var sum float64
	n := 0
	for _, t := range r.Trials {
		if v, ok := t.Metrics[kind]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Normalized returns the normalized performance for a metric with its
// Katz log-transform 95% interval (§3.3.3).
func (r *Result) Normalized(kind metrics.Kind) stats.Ratio {
	return stats.NormalizedPerformance(
		r.MetricMean(kind), r.Baseline.MetricMeans[kind],
		len(r.Trials), len(r.Baseline.Instances))
}

// PrimaryMetric returns the suite's first metric kind.
func (r *Result) PrimaryMetric() metrics.Kind {
	return r.Campaign.Suite.Metrics[0]
}

// NormalizedPrimary is Normalized over the suite's primary metric.
func (r *Result) NormalizedPrimary() stats.Ratio {
	return r.Normalized(r.PrimaryMetric())
}

// MeanNormalized averages the normalized performance over every metric
// of the suite (the per-task bars of Figure 3 average a task's metrics).
func (r *Result) MeanNormalized() float64 {
	var sum float64
	for _, k := range r.Campaign.Suite.Metrics {
		sum += r.Normalized(k).Value
	}
	return sum / float64(len(r.Campaign.Suite.Metrics))
}

// Tally returns the outcome class counts.
func (r *Result) Tally() outcome.Tally {
	var t outcome.Tally
	for _, tr := range r.Trials {
		t.Add(tr.Outcome)
	}
	return t
}

// MaskedRate is the fraction of trials whose answer matched the
// fault-free execution (the Masked outcome of §3.2).
func (r *Result) MaskedRate() float64 {
	t := r.Tally()
	if t.Total() == 0 {
		return 0
	}
	return float64(t.Masked) / float64(t.Total())
}

// FiredRate is the fraction of trials whose fault actually struck.
func (r *Result) FiredRate() float64 {
	n := 0
	for _, t := range r.Trials {
		if t.Fired {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}

// ExpertChangedRate is the fraction of trials whose MoE expert-selection
// trace changed (Figure 15's first bar).
func (r *Result) ExpertChangedRate() float64 {
	n := 0
	for _, t := range r.Trials {
		if t.ExpertChanged {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}

// OutputChangedRate is the fraction of trials whose output tokens changed
// relative to the baseline.
func (r *Result) OutputChangedRate() float64 {
	n := 0
	for _, t := range r.Trials {
		if t.Outcome.Changed {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}

// BitBucket aggregates outcomes of trials grouped by the highest flipped
// bit position (Figures 9–10).
type BitBucket struct {
	Bit       int
	Trials    int
	Subtle    int
	Distorted int
}

// BitBreakdown returns per-bit-position outcome buckets sorted by bit.
func (r *Result) BitBreakdown() []BitBucket {
	byBit := map[int]*BitBucket{}
	for _, t := range r.Trials {
		hb := t.Site.HighestBit()
		b := byBit[hb]
		if b == nil {
			b = &BitBucket{Bit: hb}
			byBit[hb] = b
		}
		b.Trials++
		switch t.Outcome.Class {
		case outcome.SDCSubtle:
			b.Subtle++
		case outcome.SDCDistorted:
			b.Distorted++
		}
	}
	out := make([]BitBucket, 0, len(byBit))
	for _, b := range byBit {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bit < out[j].Bit })
	return out
}

// BitProportions returns, per bit position, the share of all SDCs of the
// given class contributed by that bit — the y-axis of Figures 9–10.
func (r *Result) BitProportions(class outcome.Class) map[int]float64 {
	total := 0
	counts := map[int]int{}
	for _, t := range r.Trials {
		if t.Outcome.Class != class {
			continue
		}
		counts[t.Site.HighestBit()]++
		total++
	}
	out := make(map[int]float64, len(counts))
	for bit, n := range counts {
		if total > 0 {
			out[bit] = float64(n) / float64(total)
		}
	}
	return out
}

// MeanSteps returns the average decode-step count per trial (the runtime
// proxy of Figure 19).
func (r *Result) MeanSteps() float64 {
	var sum float64
	for _, t := range r.Trials {
		sum += float64(t.Steps)
	}
	return sum / float64(len(r.Trials))
}

// GoldAccuracy is the trial accuracy against gold answers.
func (r *Result) GoldAccuracy() float64 {
	n := 0
	for _, t := range r.Trials {
		if t.AnswerOK {
			n++
		}
	}
	return float64(n) / float64(len(r.Trials))
}
