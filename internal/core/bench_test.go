package core

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
)

// benchCase builds the benchmark workload: a long-prompt generative
// computational-fault campaign — the configuration the prefix-cache
// engine accelerates.
func benchCase(seedPath bool) Campaign {
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("bench", vocab.Size(), numerics.BF16)
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 8})
	suite := tasks.NewSelfRefSuite("bench-prefix", 4, 2, 120, 12, []metrics.Kind{metrics.KindBLEU})
	c := Campaign{Model: m, Suite: suite, Fault: faults.Comp2Bit, Trials: 32, Seed: 9}
	if seedPath {
		withSeedPath()(&c)
	}
	return c
}

// benchCampaign measures blocking-Run throughput. seedPath pins the run
// to the seed execution path (sequential prefill, deep clones, full
// re-prefill per trial) so the two benchmarks bracket the engine's
// speedup.
func benchCampaign(b *testing.B, seedPath bool) {
	c := benchCase(seedPath)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trials) != c.Trials {
			b.Fatal("short campaign")
		}
	}
	b.ReportMetric(float64(c.Trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkCampaignSeedPath(b *testing.B)     { benchCampaign(b, true) }
func BenchmarkCampaignPrefixEngine(b *testing.B) { benchCampaign(b, false) }

// BenchmarkCampaignStreamRunner measures the full streaming runtime —
// event emission, telemetry accounting, per-trial Progress — on the
// same workload, so the streaming overhead over blocking Run is
// directly visible (acceptance: <= 5%).
func BenchmarkCampaignStreamRunner(b *testing.B) {
	c := benchCase(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var final CampaignDone
		for ev := range NewRunner(c).Stream(context.Background()) {
			if e, ok := ev.(CampaignDone); ok {
				final = e
			}
		}
		if final.Err != nil {
			b.Fatal(final.Err)
		}
		if len(final.Result.Trials) != c.Trials {
			b.Fatal("short campaign")
		}
	}
	b.ReportMetric(float64(c.Trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// TestEmitBenchJSON renders the three-way throughput comparison (seed
// path vs prefix engine vs streaming runner) as machine-readable JSON.
// Gated behind BENCH_JSON_OUT so it only runs from `make bench`; it
// lives here (not in a script) because the seed path is an unexported
// test knob.
func TestEmitBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH_JSON_OUT to emit the benchmark JSON")
	}

	run := func(c Campaign, stream bool) float64 {
		start := time.Now()
		if stream {
			var final CampaignDone
			for ev := range NewRunner(c).Stream(context.Background()) {
				if e, ok := ev.(CampaignDone); ok {
					final = e
				}
			}
			if final.Err != nil {
				t.Fatal(final.Err)
			}
		} else {
			if _, err := c.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		return float64(c.Trials) / time.Since(start).Seconds()
	}

	// Warm up once so page faults and allocator growth don't skew the
	// first measured configuration.
	run(benchCase(false), false)

	seed := run(benchCase(true), false)
	engine := run(benchCase(false), false)
	streaming := run(benchCase(false), true)

	report := struct {
		Workload          string  `json:"workload"`
		Trials            int     `json:"trials"`
		SeedPath          float64 `json:"seed_path_trials_per_sec"`
		Engine            float64 `json:"engine_trials_per_sec"`
		Streaming         float64 `json:"streaming_trials_per_sec"`
		EngineSpeedup     float64 `json:"engine_speedup_vs_seed"`
		StreamingOverhead float64 `json:"streaming_overhead_frac"`
	}{
		Workload:          "selfref generative, 120-token prompts, comp-2bit",
		Trials:            benchCase(false).Trials,
		SeedPath:          seed,
		Engine:            engine,
		Streaming:         streaming,
		EngineSpeedup:     engine / seed,
		StreamingOverhead: (engine - streaming) / engine,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("seed=%.2f engine=%.2f streaming=%.2f trials/s (overhead %.1f%%)",
		seed, engine, streaming, 100*report.StreamingOverhead)
}
