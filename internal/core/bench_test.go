package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
)

// benchCampaign measures campaign throughput on a long-prompt generative
// computational-fault workload — the configuration the prefix-cache
// engine accelerates. seedPath pins the run to the seed execution path
// (sequential prefill, deep clones, full re-prefill per trial) so the two
// benchmarks bracket the engine's speedup.
func benchCampaign(b *testing.B, seedPath bool) {
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("bench", vocab.Size(), numerics.BF16)
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 8})
	suite := tasks.NewSelfRefSuite("bench-prefix", 4, 2, 120, 12, []metrics.Kind{metrics.KindBLEU})
	c := Campaign{Model: m, Suite: suite, Fault: faults.Comp2Bit, Trials: 32, Seed: 9}
	if seedPath {
		c.Model = m.Clone()
		c.Model.SetSequentialPrefill(true)
		c.noPrefixReuse = true
		c.deepClones = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trials) != c.Trials {
			b.Fatal("short campaign")
		}
	}
	b.ReportMetric(float64(c.Trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkCampaignSeedPath(b *testing.B)     { benchCampaign(b, true) }
func BenchmarkCampaignPrefixEngine(b *testing.B) { benchCampaign(b, false) }
