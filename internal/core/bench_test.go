package core

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/numerics"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// benchCase builds the benchmark workload: a long-prompt generative
// computational-fault campaign — the configuration the prefix-cache
// engine accelerates.
func benchCase(seedPath bool) Campaign {
	vocab := tasks.GeneralVocab()
	cfg := model.StandardConfig("bench", vocab.Size(), numerics.BF16)
	m := model.MustBuild(model.Spec{Config: cfg, Family: model.QwenS, Seed: 8})
	suite := tasks.NewSelfRefSuite("bench-prefix", 4, 2, 120, 12, []metrics.Kind{metrics.KindBLEU})
	c := Campaign{Model: m, Suite: suite, Fault: faults.Comp2Bit, Trials: 32, Seed: 9}
	if seedPath {
		withSeedPath()(&c)
	}
	return c
}

// benchCampaign measures blocking-Run throughput. seedPath pins the run
// to the seed execution path (sequential prefill, deep clones, full
// re-prefill per trial) so the two benchmarks bracket the engine's
// speedup.
func benchCampaign(b *testing.B, seedPath bool) {
	c := benchCase(seedPath)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Trials) != c.Trials {
			b.Fatal("short campaign")
		}
	}
	b.ReportMetric(float64(c.Trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkCampaignSeedPath(b *testing.B)     { benchCampaign(b, true) }
func BenchmarkCampaignPrefixEngine(b *testing.B) { benchCampaign(b, false) }

// BenchmarkCampaignStreamRunner measures the full streaming runtime —
// event emission, telemetry accounting, per-trial Progress — on the
// same workload, so the streaming overhead over blocking Run is
// directly visible (acceptance: <= 5%).
func BenchmarkCampaignStreamRunner(b *testing.B) {
	c := benchCase(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var final CampaignDone
		for ev := range NewRunner(c).Stream(context.Background()) {
			if e, ok := ev.(CampaignDone); ok {
				final = e
			}
		}
		if final.Err != nil {
			b.Fatal(final.Err)
		}
		if len(final.Result.Trials) != c.Trials {
			b.Fatal("short campaign")
		}
	}
	b.ReportMetric(float64(c.Trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

// TestEmitBenchJSON renders the three-way throughput comparison (seed
// path vs prefix engine vs streaming runner) as machine-readable JSON.
// Gated behind BENCH_JSON_OUT so it only runs from `make bench`; it
// lives here (not in a script) because the seed path is an unexported
// test knob.
func TestEmitBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH_JSON_OUT to emit the benchmark JSON")
	}

	run := func(c Campaign, stream bool) float64 {
		start := time.Now()
		if stream {
			var final CampaignDone
			for ev := range NewRunner(c).Stream(context.Background()) {
				if e, ok := ev.(CampaignDone); ok {
					final = e
				}
			}
			if final.Err != nil {
				t.Fatal(final.Err)
			}
		} else {
			if _, err := c.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		return float64(c.Trials) / time.Since(start).Seconds()
	}

	// Warm up once so page faults and allocator growth don't skew the
	// first measured configuration.
	run(benchCase(false), false)

	seed := run(benchCase(true), false)
	engine := run(benchCase(false), false)
	streaming := run(benchCase(false), true)

	report := struct {
		Workload          string  `json:"workload"`
		Trials            int     `json:"trials"`
		SeedPath          float64 `json:"seed_path_trials_per_sec"`
		Engine            float64 `json:"engine_trials_per_sec"`
		Streaming         float64 `json:"streaming_trials_per_sec"`
		EngineSpeedup     float64 `json:"engine_speedup_vs_seed"`
		StreamingOverhead float64 `json:"streaming_overhead_frac"`
	}{
		Workload:          "selfref generative, 120-token prompts, comp-2bit",
		Trials:            benchCase(false).Trials,
		SeedPath:          seed,
		Engine:            engine,
		Streaming:         streaming,
		EngineSpeedup:     engine / seed,
		StreamingOverhead: (engine - streaming) / engine,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("seed=%.2f engine=%.2f streaming=%.2f trials/s (overhead %.1f%%)",
		seed, engine, streaming, 100*report.StreamingOverhead)
}

// TestEmitABFTBenchJSON measures the checksum detector's campaign cost —
// ABFT off vs site-only checking vs every-layer checking — plus its
// detection quality on the same workload, written to BENCH_3.json. Gated
// behind BENCH3_JSON_OUT so it only runs from `make bench`. Acceptance:
// all-layer overhead <= 25% of the unchecked throughput.
func TestEmitABFTBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH3_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH3_JSON_OUT to emit the ABFT benchmark JSON")
	}

	run := func(abftCfg *ABFTConfig) float64 {
		c := benchCase(false)
		c.ABFT = abftCfg
		start := time.Now()
		if _, err := c.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return float64(c.Trials) / time.Since(start).Seconds()
	}

	run(nil) // warmup

	// Interleave repetitions of the three arms and keep each arm's best
	// throughput, so allocator growth and clock drift cannot masquerade
	// as checking overhead on this sub-second workload.
	var off, site, all float64
	for rep := 0; rep < 4; rep++ {
		off = math.Max(off, run(nil))
		site = math.Max(site, run(&ABFTConfig{}))
		all = math.Max(all, run(&ABFTConfig{AllLayers: true}))
	}

	// Detection quality on the same workload at a larger trial budget
	// (the 32-trial throughput arms would put only ~20 exponent-bit
	// faults under test).
	recallCase := benchCase(false)
	recallCase.Trials = 160
	recallCase.ABFT = &ABFTConfig{}
	siteRes, err := recallCase.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	det := siteRes.Detection()
	expFired, expDet := 0, 0
	dt := benchCase(false).Model.Cfg.DType
	for _, br := range siteRes.DetectionByBit() {
		if numerics.ClassifyBit(dt, br.Bit) == numerics.ExponentBit {
			expFired += br.Fired
			expDet += br.Detected
		}
	}
	expRecall := 0.0
	if expFired > 0 {
		expRecall = float64(expDet) / float64(expFired)
	}

	report := struct {
		Workload          string  `json:"workload"`
		Trials            int     `json:"trials"`
		Off               float64 `json:"abft_off_trials_per_sec"`
		SiteOnly          float64 `json:"abft_site_trials_per_sec"`
		AllLayers         float64 `json:"abft_all_layers_trials_per_sec"`
		SiteOverhead      float64 `json:"site_overhead_frac"`
		AllLayersOverhead float64 `json:"all_layers_overhead_frac"`
		Recall            float64 `json:"detection_recall"`
		ExponentRecall    float64 `json:"exponent_bit_recall"`
		FalsePositives    int     `json:"false_positives"`
	}{
		Workload:          "selfref generative, 120-token prompts, comp-2bit",
		Trials:            recallCase.Trials,
		Off:               off,
		SiteOnly:          site,
		AllLayers:         all,
		SiteOverhead:      (off - site) / off,
		AllLayersOverhead: (off - all) / off,
		Recall:            det.Recall(),
		ExponentRecall:    expRecall,
		FalsePositives:    det.FalsePositives,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("off=%.2f site=%.2f all=%.2f trials/s (all-layer overhead %.1f%%), recall=%.3f exp=%.3f fp=%d",
		off, site, all, 100*report.AllLayersOverhead, det.Recall(), expRecall, det.FalsePositives)
	if report.AllLayersOverhead > 0.25 {
		t.Errorf("all-layer checking overhead %.1f%% exceeds the 25%% budget", 100*report.AllLayersOverhead)
	}
}

// bench4SerialTrialsPerSec is the serial (tracing-off) arm recorded in
// BENCH_4.json when the observability PR landed — the baseline the
// batched-decode acceptance bar is set against: a batch >= 8 arm of
// BENCH_5 must at least double it. The figure is pinned here rather
// than re-read from BENCH_4.json because `make bench` regenerates that
// file with whatever kernel improvements this PR brought, which would
// move the yardstick while it is being used.
const bench4SerialTrialsPerSec = 227.1

// TestEmitBatchBenchJSON measures the continuous-batching decode
// scheduler — serial vs batch widths 8/16/32 on the same workload,
// each arm's throughput paired with its measured batch occupancy —
// written to BENCH_5.json. Gated behind BENCH5_JSON_OUT so it only
// runs from `make bench`. The trial budget is larger than the other
// benchmarks so the shared-baseline evaluation does not dilute the
// decode-loop throughput being compared. Acceptance: some batch >= 8
// arm reaches >= 2x the BENCH_4 serial arm. (On a single-core host the
// batched and serial arms of the same run are expected to be close:
// every batch row carries its own KV cache and hook context, so
// batching amortizes scheduling and allocation, not compute — the 2x
// comes from the kernel work that rode in with the batched engine, and
// the same-run serial ratio is reported alongside for honesty.)
func TestEmitBatchBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH5_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH5_JSON_OUT to emit the batched-decode benchmark JSON")
	}

	type arm struct {
		TPS float64 `json:"trials_per_sec"`
		Occ float64 `json:"batch_occupancy,omitempty"`
	}
	run := func(batch int) arm {
		c := benchCase(false)
		c.Trials = 384
		c.BatchDecode = batch
		r := NewRunner(c)
		start := time.Now()
		if _, err := r.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return arm{
			TPS: float64(c.Trials) / time.Since(start).Seconds(),
			Occ: r.Telemetry().Snapshot().BatchOccupancy,
		}
	}

	run(0) // warmup

	// Interleave repetitions and keep each arm's best, as in the ABFT and
	// tracing benchmarks: allocator growth and clock drift must not read
	// as batching speedup (or its absence).
	best := func(a, b arm) arm {
		if b.TPS > a.TPS {
			return b
		}
		return a
	}
	var serial, b8, b16, b32 arm
	for rep := 0; rep < 4; rep++ {
		serial = best(serial, run(0))
		b8 = best(b8, run(8))
		b16 = best(b16, run(16))
		b32 = best(b32, run(32))
	}

	bestBatched := best(b8, best(b16, b32))
	report := struct {
		Workload      string  `json:"workload"`
		Trials        int     `json:"trials"`
		Serial        arm     `json:"serial"`
		Batch8        arm     `json:"batch8"`
		Batch16       arm     `json:"batch16"`
		Batch32       arm     `json:"batch32"`
		SerialSpeedup float64 `json:"best_batched_speedup_vs_serial"`
		Bench4Serial  float64 `json:"bench4_serial_trials_per_sec"`
		Bench4Speedup float64 `json:"best_batched_speedup_vs_bench4_serial"`
	}{
		Workload:      "selfref generative, 120-token prompts, comp-2bit",
		Trials:        384,
		Serial:        serial,
		Batch8:        b8,
		Batch16:       b16,
		Batch32:       b32,
		SerialSpeedup: bestBatched.TPS / serial.TPS,
		Bench4Serial:  bench4SerialTrialsPerSec,
		Bench4Speedup: bestBatched.TPS / bench4SerialTrialsPerSec,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial=%.2f batch8=%.2f (occ %.1f) batch16=%.2f (occ %.1f) batch32=%.2f (occ %.1f) trials/s, %.2fx vs same-run serial, %.2fx vs BENCH_4 serial",
		serial.TPS, b8.TPS, b8.Occ, b16.TPS, b16.Occ, b32.TPS, b32.Occ, report.SerialSpeedup, report.Bench4Speedup)
	if report.Bench4Speedup < 2 {
		t.Errorf("best batched arm %.2f trials/s is %.2fx the BENCH_4 serial arm (%.1f); the acceptance bar is 2x",
			bestBatched.TPS, report.Bench4Speedup, bench4SerialTrialsPerSec)
	}
}

// TestEmitTraceBenchJSON measures the tracing layer's campaign cost —
// tracing off vs sampled (every 16th trial, the -trace-sample default)
// vs full (every trial) — written to BENCH_4.json. Gated behind
// BENCH4_JSON_OUT so it only runs from `make bench`. Acceptance: sampled
// tracing costs <= 5% of the untraced throughput.
func TestEmitTraceBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH4_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH4_JSON_OUT to emit the tracing benchmark JSON")
	}

	discard := func(trace.Record) error { return nil }
	run := func(opts ...RunnerOption) float64 {
		c := benchCase(false)
		start := time.Now()
		if _, err := NewRunner(c, opts...).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return float64(c.Trials) / time.Since(start).Seconds()
	}

	run() // warmup

	// Interleave repetitions and keep each arm's best throughput, as in
	// the ABFT benchmark: allocator growth and clock drift must not read
	// as tracing overhead on this sub-second workload.
	var off, sampled, full float64
	for rep := 0; rep < 4; rep++ {
		off = math.Max(off, run())
		sampled = math.Max(sampled, run(WithTrace(16, discard)))
		full = math.Max(full, run(WithTrace(1, discard)))
	}

	report := struct {
		Workload        string  `json:"workload"`
		Trials          int     `json:"trials"`
		Off             float64 `json:"trace_off_trials_per_sec"`
		Sampled         float64 `json:"trace_sampled_trials_per_sec"`
		Full            float64 `json:"trace_full_trials_per_sec"`
		SampledOverhead float64 `json:"sampled_overhead_frac"`
		FullOverhead    float64 `json:"full_overhead_frac"`
	}{
		Workload:        "selfref generative, 120-token prompts, comp-2bit",
		Trials:          benchCase(false).Trials,
		Off:             off,
		Sampled:         sampled,
		Full:            full,
		SampledOverhead: (off - sampled) / off,
		FullOverhead:    (off - full) / off,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("off=%.2f sampled=%.2f full=%.2f trials/s (sampled overhead %.1f%%, full %.1f%%)",
		off, sampled, full, 100*report.SampledOverhead, 100*report.FullOverhead)
	if report.SampledOverhead > 0.05 {
		t.Errorf("sampled tracing overhead %.1f%% exceeds the 5%% budget", 100*report.SampledOverhead)
	}
}
