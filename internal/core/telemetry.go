package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/outcome"
	"repro/internal/trace"
)

// nPhaseBuckets is the finite bucket count of the per-phase latency
// histograms; one overflow bucket (+Inf) follows.
const nPhaseBuckets = 22

// phaseBucketBounds are the inclusive upper bounds (seconds) of the
// latency buckets: exponential, 1µs doubling up to ~2s — wide enough to
// straddle everything from a prefix-fork (microseconds) to a full
// long-prompt prefill.
var phaseBucketBounds = func() []float64 {
	b := make([]float64, nPhaseBuckets)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

func init() {
	if n := len(new(Telemetry).phases); n != len(trace.Phases) {
		panic("core: phase histogram count out of sync with trace.Phases")
	}
}

// phaseHist is one phase's lock-free latency histogram.
type phaseHist struct {
	count    atomic.Int64
	sumNanos atomic.Int64
	buckets  [nPhaseBuckets + 1]atomic.Int64
}

func (h *phaseHist) observe(d time.Duration) {
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	i := sort.SearchFloat64s(phaseBucketBounds, d.Seconds())
	h.buckets[i].Add(1)
}

func (h *phaseHist) reset() {
	h.count.Store(0)
	h.sumNanos.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Telemetry is a lightweight per-campaign metrics registry: the Runner
// feeds it as trials complete, and Snapshot renders the current state
// for progress lines and the JSON dump (report.WriteTelemetryJSON).
// All methods are safe for concurrent use.
type Telemetry struct {
	// hookFires counts forward-hook invocations of the campaign's
	// ExtraHook (mitigation) slot — atomic because hooks fire on every
	// layer of every token across all workers.
	hookFires atomic.Int64
	// traced counts trials that produced a propagation-trace Record.
	traced atomic.Int64
	// batchSteps and batchRows count stacked decode steps and the trial
	// rows they carried (continuous-batching campaigns only); their ratio
	// is the mean batch occupancy. Atomic: workers observe each step.
	batchSteps atomic.Int64
	batchRows  atomic.Int64
	// phases holds the per-phase latency histograms, indexed by
	// trace.PhaseIndex; atomic because workers observe spans directly.
	phases [6]phaseHist

	mu      sync.Mutex
	start   time.Time
	total   int
	done    int
	fired   int
	resumed int
	tally   outcome.Tally
	workers []workerStat
	abft    abftStat
}

// abftStat accumulates the campaign's detection-layer accounting.
// detected/missed classify fired trials by whether the checker flagged
// the injection site; the rest sum the per-trial Detection counters.
type abftStat struct {
	checks, flagged          int
	detected, missed         int
	falsePositives, cascaded int
	corrected, skipped       int
}

type workerStat struct {
	trials int
	busy   time.Duration
}

// NewTelemetry returns an empty registry. The Runner creates one
// automatically; supply a shared instance with WithTelemetry to read it
// after (or during) a run.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// begin resets the registry for a campaign of total trials over the
// given worker-pool size and starts the throughput clock.
func (t *Telemetry) begin(total, workers int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.start = now()
	t.total = total
	t.done = 0
	t.fired = 0
	t.resumed = 0
	t.tally = outcome.Tally{}
	t.workers = make([]workerStat, workers)
	t.abft = abftStat{}
	t.hookFires.Store(0)
	t.traced.Store(0)
	t.batchSteps.Store(0)
	t.batchRows.Store(0)
	for i := range t.phases {
		t.phases[i].reset()
	}
}

// restore folds trials recovered from a resume checkpoint into the
// cumulative counters, so post-resume tallies and fired rates describe
// the whole campaign rather than restarting from zero. Restored trials
// are tracked separately (resumed) and excluded from the throughput
// rate — they were not executed by this run.
func (t *Telemetry) restore(trials []Trial) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range trials {
		t.accountLocked(tr)
	}
	t.resumed += len(trials)
}

// record accounts one completed trial to the given worker.
func (t *Telemetry) record(worker int, tr Trial, busy time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.accountLocked(tr)
	if worker >= 0 && worker < len(t.workers) {
		t.workers[worker].trials++
		t.workers[worker].busy += busy
	}
}

// accountLocked folds one trial into the outcome and detection counters.
// Callers hold t.mu.
func (t *Telemetry) accountLocked(tr Trial) {
	t.done++
	if tr.Fired {
		t.fired++
	}
	t.tally.Add(tr.Outcome)
	if d := tr.Detection; d != nil {
		t.abft.checks += d.Checks
		t.abft.flagged += d.Flagged
		if tr.Fired {
			if d.AtSite {
				t.abft.detected++
			} else {
				t.abft.missed++
			}
		}
		t.abft.falsePositives += d.FalsePositives
		t.abft.cascaded += d.Cascaded
		t.abft.corrected += d.Corrected
		t.abft.skipped += d.Skipped
	}
}

// hookFired counts one ExtraHook invocation.
func (t *Telemetry) hookFired() { t.hookFires.Add(1) }

// tracedTrial counts one trial that produced a propagation trace.
func (t *Telemetry) tracedTrial() { t.traced.Add(1) }

// observeBatch counts one stacked decode step carrying rows trials.
func (t *Telemetry) observeBatch(rows int) {
	t.batchSteps.Add(1)
	t.batchRows.Add(int64(rows))
}

// observePhase adds one latency observation to a phase histogram.
// Lock-free: workers call it directly as trials complete.
func (t *Telemetry) observePhase(p trace.Phase, d time.Duration) {
	if i := trace.PhaseIndex(p); i >= 0 && i < len(t.phases) {
		t.phases[i].observe(d)
	}
}

// observeSpans folds one trial's phase timings into the histograms.
// decode_token is one per-trial mean observation (decode time over
// decode steps); the check/mitigate phases are observed only when the
// trial actually ran a checker, so their counts stay comparable to the
// trial count of ABFT campaigns.
func (t *Telemetry) observeSpans(sp *spanTimes) {
	t.observePhase(trace.PhasePrefill, sp.prefill)
	t.observePhase(trace.PhaseDecode, sp.decode)
	if sp.steps > 0 {
		t.observePhase(trace.PhaseDecodeToken, sp.decode/time.Duration(sp.steps))
	}
	if sp.abftOn {
		t.observePhase(trace.PhaseABFTCheck, sp.abft)
		t.observePhase(trace.PhaseMitigate, sp.mitigate)
	}
	t.observePhase(trace.PhaseClassify, sp.classify)
}

// WorkerSnapshot is one worker's share of the campaign.
type WorkerSnapshot struct {
	// Trials the worker completed.
	Trials int `json:"trials"`
	// BusySeconds the worker spent inside trials.
	BusySeconds float64 `json:"busy_seconds"`
	// Utilization is busy time over the campaign's wall time so far.
	Utilization float64 `json:"utilization"`
}

// PhaseSnapshot is one phase's latency histogram: observation count, sum
// of observed seconds, and per-bucket counts aligned with
// TelemetrySnapshot.PhaseBucketBounds (one extra overflow bucket at the
// end — the Prometheus +Inf bucket).
type PhaseSnapshot struct {
	Phase      string  `json:"phase"`
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	Buckets    []int64 `json:"buckets"`
}

// TelemetrySnapshot is a point-in-time rendering of the registry.
// DoneTrials, Fired and the outcome tallies are cumulative for the
// campaign (trials restored from a resume checkpoint included;
// ResumedTrials says how many), while TrialsPerSec is the post-resume
// session rate — executed trials over this run's wall time.
type TelemetrySnapshot struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	TotalTrials    int     `json:"total_trials"`
	DoneTrials     int     `json:"done_trials"`
	ResumedTrials  int     `json:"resumed_trials,omitempty"`
	TrialsPerSec   float64 `json:"trials_per_sec"`
	Fired          int     `json:"fired"`
	FiredRate      float64 `json:"fired_rate"`
	Masked         int     `json:"masked"`
	Subtle         int     `json:"sdc_subtle"`
	Distorted      int     `json:"sdc_distorted"`
	HookFires      int64   `json:"hook_fires"`
	TracedTrials   int64   `json:"traced_trials,omitempty"`
	// Continuous-batching decode occupancy (all zero without
	// Campaign.BatchDecode): stacked decode steps, the trial rows they
	// carried, and their ratio — the mean in-flight batch size.
	DecodeBatchSteps int64   `json:"decode_batch_steps,omitempty"`
	DecodeBatchRows  int64   `json:"decode_batch_rows,omitempty"`
	BatchOccupancy   float64 `json:"batch_occupancy,omitempty"`
	// ABFT detection-layer counters (all zero without Campaign.ABFT):
	// checks/violations plus fired trials split into detected (flagged at
	// the injection site) and missed, noise false positives, cascaded
	// downstream flags, and corrective actions taken.
	AbftChecks         int              `json:"abft_checks,omitempty"`
	AbftFlagged        int              `json:"abft_flagged,omitempty"`
	AbftDetected       int              `json:"abft_detected,omitempty"`
	AbftMissed         int              `json:"abft_missed,omitempty"`
	AbftFalsePositives int              `json:"abft_false_positives,omitempty"`
	AbftCascaded       int              `json:"abft_cascaded,omitempty"`
	AbftCorrected      int              `json:"abft_corrected,omitempty"`
	AbftSkipped        int              `json:"abft_skipped,omitempty"`
	Workers            []WorkerSnapshot `json:"workers"`
	// PhaseBucketBounds are the inclusive upper bounds (seconds) shared
	// by every phase histogram; Phases holds the histograms for phases
	// with at least one observation, in trace.Phases order.
	PhaseBucketBounds []float64       `json:"phase_bucket_bounds,omitempty"`
	Phases            []PhaseSnapshot `json:"phases,omitempty"`
}

// Snapshot renders the current state.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := time.Duration(0)
	if !t.start.IsZero() {
		elapsed = since(t.start)
	}
	s := TelemetrySnapshot{
		ElapsedSeconds: elapsed.Seconds(),
		TotalTrials:    t.total,
		DoneTrials:     t.done,
		ResumedTrials:  t.resumed,
		Fired:          t.fired,
		Masked:         t.tally.Masked,
		Subtle:         t.tally.Subtle,
		Distorted:      t.tally.Distorted,
		HookFires:      t.hookFires.Load(),
		TracedTrials:   t.traced.Load(),

		AbftChecks:         t.abft.checks,
		AbftFlagged:        t.abft.flagged,
		AbftDetected:       t.abft.detected,
		AbftMissed:         t.abft.missed,
		AbftFalsePositives: t.abft.falsePositives,
		AbftCascaded:       t.abft.cascaded,
		AbftCorrected:      t.abft.corrected,
		AbftSkipped:        t.abft.skipped,
	}
	s.DecodeBatchSteps = t.batchSteps.Load()
	s.DecodeBatchRows = t.batchRows.Load()
	if s.DecodeBatchSteps > 0 {
		s.BatchOccupancy = float64(s.DecodeBatchRows) / float64(s.DecodeBatchSteps)
	}
	if executed := t.done - t.resumed; executed > 0 && elapsed > 0 {
		s.TrialsPerSec = float64(executed) / elapsed.Seconds()
	}
	if t.done > 0 {
		s.FiredRate = float64(t.fired) / float64(t.done)
	}
	for _, w := range t.workers {
		ws := WorkerSnapshot{Trials: w.trials, BusySeconds: w.busy.Seconds()}
		if elapsed > 0 {
			ws.Utilization = w.busy.Seconds() / elapsed.Seconds()
		}
		s.Workers = append(s.Workers, ws)
	}
	for i := range t.phases {
		h := &t.phases[i]
		n := h.count.Load()
		if n == 0 {
			continue
		}
		ps := PhaseSnapshot{
			Phase:      string(trace.Phases[i]),
			Count:      n,
			SumSeconds: time.Duration(h.sumNanos.Load()).Seconds(),
			Buckets:    make([]int64, len(h.buckets)),
		}
		for b := range h.buckets {
			ps.Buckets[b] = h.buckets[b].Load()
		}
		s.Phases = append(s.Phases, ps)
	}
	if len(s.Phases) > 0 {
		s.PhaseBucketBounds = append([]float64(nil), phaseBucketBounds...)
	}
	return s
}

// progress renders the registry as a Progress event with the overall
// done count (which may exceed this run's executed-trial count after a
// resume).
func (t *Telemetry) progress(done, total int) Progress {
	s := t.Snapshot()
	return Progress{
		Done:         done,
		Total:        total,
		TrialsPerSec: s.TrialsPerSec,
		Fired:        s.Fired,
		Tally:        outcome.Tally{Masked: s.Masked, Subtle: s.Subtle, Distorted: s.Distorted},
		Elapsed:      time.Duration(s.ElapsedSeconds * float64(time.Second)),
	}
}
