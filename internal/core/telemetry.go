package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/outcome"
)

// Telemetry is a lightweight per-campaign metrics registry: the Runner
// feeds it as trials complete, and Snapshot renders the current state
// for progress lines and the JSON dump (report.WriteTelemetryJSON).
// All methods are safe for concurrent use.
type Telemetry struct {
	// hookFires counts forward-hook invocations of the campaign's
	// ExtraHook (mitigation) slot — atomic because hooks fire on every
	// layer of every token across all workers.
	hookFires atomic.Int64

	mu      sync.Mutex
	start   time.Time
	total   int
	done    int
	fired   int
	tally   outcome.Tally
	workers []workerStat
	abft    abftStat
}

// abftStat accumulates the campaign's detection-layer accounting.
// detected/missed classify fired trials by whether the checker flagged
// the injection site; the rest sum the per-trial Detection counters.
type abftStat struct {
	checks, flagged          int
	detected, missed         int
	falsePositives, cascaded int
	corrected, skipped       int
}

type workerStat struct {
	trials int
	busy   time.Duration
}

// NewTelemetry returns an empty registry. The Runner creates one
// automatically; supply a shared instance with WithTelemetry to read it
// after (or during) a run.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// begin resets the registry for a campaign of total trials over the
// given worker-pool size and starts the throughput clock.
func (t *Telemetry) begin(total, workers int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.start = time.Now()
	t.total = total
	t.done = 0
	t.fired = 0
	t.tally = outcome.Tally{}
	t.workers = make([]workerStat, workers)
	t.abft = abftStat{}
	t.hookFires.Store(0)
}

// record accounts one completed trial to the given worker.
func (t *Telemetry) record(worker int, tr Trial, busy time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	if tr.Fired {
		t.fired++
	}
	t.tally.Add(tr.Outcome)
	if d := tr.Detection; d != nil {
		t.abft.checks += d.Checks
		t.abft.flagged += d.Flagged
		if tr.Fired {
			if d.AtSite {
				t.abft.detected++
			} else {
				t.abft.missed++
			}
		}
		t.abft.falsePositives += d.FalsePositives
		t.abft.cascaded += d.Cascaded
		t.abft.corrected += d.Corrected
		t.abft.skipped += d.Skipped
	}
	if worker >= 0 && worker < len(t.workers) {
		t.workers[worker].trials++
		t.workers[worker].busy += busy
	}
}

// hookFired counts one ExtraHook invocation.
func (t *Telemetry) hookFired() { t.hookFires.Add(1) }

// WorkerSnapshot is one worker's share of the campaign.
type WorkerSnapshot struct {
	// Trials the worker completed.
	Trials int `json:"trials"`
	// BusySeconds the worker spent inside trials.
	BusySeconds float64 `json:"busy_seconds"`
	// Utilization is busy time over the campaign's wall time so far.
	Utilization float64 `json:"utilization"`
}

// TelemetrySnapshot is a point-in-time rendering of the registry.
type TelemetrySnapshot struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	TotalTrials    int     `json:"total_trials"`
	DoneTrials     int     `json:"done_trials"`
	TrialsPerSec   float64 `json:"trials_per_sec"`
	Fired          int     `json:"fired"`
	FiredRate      float64 `json:"fired_rate"`
	Masked         int     `json:"masked"`
	Subtle         int     `json:"sdc_subtle"`
	Distorted      int     `json:"sdc_distorted"`
	HookFires      int64   `json:"hook_fires"`
	// ABFT detection-layer counters (all zero without Campaign.ABFT):
	// checks/violations plus fired trials split into detected (flagged at
	// the injection site) and missed, noise false positives, cascaded
	// downstream flags, and corrective actions taken.
	AbftChecks         int              `json:"abft_checks,omitempty"`
	AbftFlagged        int              `json:"abft_flagged,omitempty"`
	AbftDetected       int              `json:"abft_detected,omitempty"`
	AbftMissed         int              `json:"abft_missed,omitempty"`
	AbftFalsePositives int              `json:"abft_false_positives,omitempty"`
	AbftCascaded       int              `json:"abft_cascaded,omitempty"`
	AbftCorrected      int              `json:"abft_corrected,omitempty"`
	AbftSkipped        int              `json:"abft_skipped,omitempty"`
	Workers            []WorkerSnapshot `json:"workers"`
}

// Snapshot renders the current state. Done/throughput count only trials
// executed by this run — trials restored from a resume checkpoint are
// not re-counted as work.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := time.Duration(0)
	if !t.start.IsZero() {
		elapsed = time.Since(t.start)
	}
	s := TelemetrySnapshot{
		ElapsedSeconds: elapsed.Seconds(),
		TotalTrials:    t.total,
		DoneTrials:     t.done,
		Fired:          t.fired,
		Masked:         t.tally.Masked,
		Subtle:         t.tally.Subtle,
		Distorted:      t.tally.Distorted,
		HookFires:      t.hookFires.Load(),

		AbftChecks:         t.abft.checks,
		AbftFlagged:        t.abft.flagged,
		AbftDetected:       t.abft.detected,
		AbftMissed:         t.abft.missed,
		AbftFalsePositives: t.abft.falsePositives,
		AbftCascaded:       t.abft.cascaded,
		AbftCorrected:      t.abft.corrected,
		AbftSkipped:        t.abft.skipped,
	}
	if elapsed > 0 {
		s.TrialsPerSec = float64(t.done) / elapsed.Seconds()
	}
	if t.done > 0 {
		s.FiredRate = float64(t.fired) / float64(t.done)
	}
	for _, w := range t.workers {
		ws := WorkerSnapshot{Trials: w.trials, BusySeconds: w.busy.Seconds()}
		if elapsed > 0 {
			ws.Utilization = w.busy.Seconds() / elapsed.Seconds()
		}
		s.Workers = append(s.Workers, ws)
	}
	return s
}

// progress renders the registry as a Progress event with the overall
// done count (which may exceed this run's executed-trial count after a
// resume).
func (t *Telemetry) progress(done, total int) Progress {
	s := t.Snapshot()
	return Progress{
		Done:         done,
		Total:        total,
		TrialsPerSec: s.TrialsPerSec,
		Fired:        s.Fired,
		Tally:        outcome.Tally{Masked: s.Masked, Subtle: s.Subtle, Distorted: s.Distorted},
		Elapsed:      time.Duration(s.ElapsedSeconds * float64(time.Second)),
	}
}
