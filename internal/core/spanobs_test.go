package core

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/tasks"
	"repro/internal/trace"
)

// spanObsCampaign is a small mixed campaign exercising both the serial
// worker path and (with decode batching) the batched scheduler.
func spanObsCampaign(t *testing.T, batch int) Campaign {
	t.Helper()
	suite := tasks.NewSelfRefSuite("spanobs", 5, 2, 16, 6, []metrics.Kind{metrics.KindBLEU})
	return New(goldenModel(t, model.QwenS, false), suite, faults.Comp2Bit, 10, 33,
		WithWorkers(2), WithDecodeBatch(batch), WithGen(gen.Settings{NumBeams: 1}))
}

// TestSpanObserverGoldenEquivalence: attaching WithSpanObserver must not
// change a single bit of the campaign Result — the observer is
// collector-side and read-only. Covered on both the serial and the
// continuous-batching execution paths.
func TestSpanObserverGoldenEquivalence(t *testing.T) {
	for _, batch := range []int{0, 4} {
		ref, err := NewRunner(spanObsCampaign(t, batch)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		var mu sync.Mutex
		seen := map[int][]trace.Span{}
		obsRes, err := NewRunner(spanObsCampaign(t, batch),
			WithSpanObserver(func(index int, spans []trace.Span, busy time.Duration) {
				mu.Lock()
				seen[index] = spans
				mu.Unlock()
			})).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		if len(ref.Trials) != len(obsRes.Trials) {
			t.Fatalf("batch=%d: trial counts differ: %d vs %d", batch, len(ref.Trials), len(obsRes.Trials))
		}
		for i := range ref.Trials {
			if !reflect.DeepEqual(ref.Trials[i], obsRes.Trials[i]) {
				t.Fatalf("batch=%d: trial %d changed under the span observer:\nplain    %+v\nobserved %+v",
					batch, i, ref.Trials[i], obsRes.Trials[i])
			}
		}

		// Every trial was observed, with phase timing spans attached.
		if len(seen) != len(ref.Trials) {
			t.Fatalf("batch=%d: observer saw %d trials, want %d", batch, len(seen), len(ref.Trials))
		}
		for idx, spans := range seen {
			if len(spans) == 0 {
				t.Fatalf("batch=%d: trial %d observed with no phase spans", batch, idx)
			}
		}
	}
}
