package core

import "time"

// The campaign engine is deterministic by construction: everything that
// reaches a Result or a checkpoint is a pure function of the campaign
// seed. Wall-clock reads are telemetry-only — phase latencies, event
// timestamps, throughput — and are funneled through this seam so the
// determinism analyzer (internal/lint) has exactly two sanctioned sites
// instead of an allow-annotation per call site. Anything timed through
// now/since must stay out of trial outcomes.

// now reads the wall clock for telemetry timestamps.
func now() time.Time {
	return time.Now() //llmfi:allow determinism telemetry-only clock seam; values never reach trial outcomes
}

// since reports elapsed wall time for telemetry latencies.
func since(t time.Time) time.Duration {
	return time.Since(t) //llmfi:allow determinism telemetry-only clock seam; values never reach trial outcomes
}
