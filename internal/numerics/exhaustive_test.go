package numerics

import (
	"math"
	"testing"
)

// TestBF16ExhaustiveRoundtrip: every non-NaN BF16 pattern decodes and
// re-encodes to itself.
func TestBF16ExhaustiveRoundtrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		v := DecodeBF16(uint16(h))
		if math.IsNaN(float64(v)) {
			continue
		}
		if got := EncodeBF16(v); got != uint16(h) {
			t.Fatalf("BF16 %#04x -> %g -> %#04x", h, v, got)
		}
	}
}

// TestFP16ExhaustiveMonotone: decoding is monotone over positive
// patterns (ordering of finite halves matches their bit patterns), the
// property the rounding-carry trick in EncodeFP16 relies on.
func TestFP16ExhaustiveMonotone(t *testing.T) {
	prev := float64(math.Inf(-1))
	for h := 0; h <= 0x7C00; h++ { // positive finite through +Inf
		v := float64(DecodeFP16(uint16(h)))
		if v < prev {
			t.Fatalf("FP16 decode not monotone at %#04x: %g < %g", h, v, prev)
		}
		prev = v
	}
}

// TestFP16EncodeNearest: for a dense sample of values, the encoder picks
// one of the two neighbouring representable values, never a farther one.
func TestFP16EncodeNearest(t *testing.T) {
	for h := uint16(0x0400); h < 0x7B00; h += 7 {
		a := float64(DecodeFP16(h))
		b := float64(DecodeFP16(h + 1))
		mid := (a + b) / 2
		for _, v := range []float64{a + (b-a)*0.25, mid - (b-a)*1e-4, mid + (b-a)*1e-4, b - (b-a)*0.25} {
			enc := EncodeFP16(float32(v))
			dec := float64(DecodeFP16(enc))
			if math.Abs(dec-v) > (b-a)/2+1e-12 {
				t.Fatalf("EncodeFP16(%g) -> %g is not nearest (neighbours %g, %g)", v, dec, a, b)
			}
		}
	}
}

// TestRoundMagnitudeBounds: rounding never increases magnitude past the
// format's max finite except by saturating to Inf, and FlipBits of any
// finite FP16 value never exceeds 65504 in magnitude while finite.
func TestRoundMagnitudeBounds(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		v := float64(DecodeFP16(uint16(h)))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if math.Abs(v) > 65504 {
			t.Fatalf("finite FP16 value %g exceeds max", v)
		}
	}
}
