package numerics

import "math"

// rshiftRNE right-shifts x by s with IEEE round-to-nearest-even on the
// discarded bits. s must be in [1, 31].
func rshiftRNE(x uint32, s uint) uint32 {
	kept := x >> s
	rem := x & (1<<s - 1)
	half := uint32(1) << (s - 1)
	if rem > half || (rem == half && kept&1 == 1) {
		kept++
	}
	return kept
}

// EncodeFP16 converts f to IEEE 754 binary16 with round-to-nearest-even.
// Overflow yields ±Inf; values below the subnormal range flush to ±0 by
// rounding, and subnormal halves are produced where required.
func EncodeFP16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	abs := b & 0x7FFFFFFF

	switch {
	case abs >= 0x7F800000: // Inf or NaN
		if abs > 0x7F800000 {
			return sign | 0x7E00 // quiet NaN
		}
		return sign | 0x7C00
	case abs >= 0x38800000: // normal fp16 range (>= 2^-14) before rounding
		// Rebias the exponent and round the 13 dropped mantissa bits;
		// a rounding carry propagates into the exponent because the
		// encoding is monotone. Overflow past exponent 0x1E becomes Inf.
		lsb := (abs >> 13) & 1
		rounded := abs + 0xFFF + lsb
		if rounded >= 0x47800000 {
			return sign | 0x7C00
		}
		return sign | uint16((rounded-0x38000000)>>13)
	case abs < 0x33000000: // below 2^-25: rounds to zero
		return sign
	default: // subnormal fp16: value in [2^-25, 2^-14)
		// result = round(value * 2^24) with the implicit leading 1 made
		// explicit. A carry past 10 bits lands exactly on the smallest
		// normal encoding, again because the encoding is monotone.
		mant := abs&0x7FFFFF | 0x800000
		shift := uint(126 - abs>>23) // == -(E+1) for unbiased exponent E; in [14, 24]
		return sign | uint16(rshiftRNE(mant, shift))
	}
}

// DecodeFP16 converts an IEEE 754 binary16 bit pattern to float32.
func DecodeFP16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1F
	mant := uint32(h & 0x3FF)

	switch {
	case exp == 0x1F: // Inf / NaN
		if mant != 0 {
			return math.Float32frombits(sign | 0x7FC00000 | mant<<13)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize into float32.
		e := int32(-14)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | uint32(e+127)<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | mant<<13)
	}
}

// EncodeBF16 converts f to bfloat16 with round-to-nearest-even. bfloat16
// is the upper half of float32, so rounding adds half of the dropped
// low 16 bits (with the tie broken toward even).
func EncodeBF16(f float32) uint16 {
	b := math.Float32bits(f)
	if math.IsNaN(float64(f)) {
		// Preserve NaN; force a quiet NaN with nonzero mantissa.
		return uint16(b>>16) | 0x0040
	}
	round := uint32(0x7FFF + (b>>16)&1)
	return uint16((b + round) >> 16)
}

// DecodeBF16 converts a bfloat16 bit pattern to float32 by placing it in
// the upper half of a float32 word.
func DecodeBF16(h uint16) float32 {
	return math.Float32frombits(uint32(h) << 16)
}
