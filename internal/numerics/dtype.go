// Package numerics implements bit-level encodings of the floating-point
// formats studied in the paper (Table 2: FP16, FP32, BF16) plus the
// primitives the fault models are built on: encoding a value into a
// format's bit pattern, flipping arbitrary bits of that pattern, and
// decoding back.
//
// All model arithmetic in this repository is carried out in float64/float32
// for speed, but every value logically lives in one of these formats:
// after each operation values are rounded ("requantized") to the active
// DType, and fault injection flips bits of the DType representation — so
// the reachable post-flip values are exactly those of the real hardware
// format. This is what makes Observations #8 and #11 (quantization and
// datatype sensitivity) reproducible.
package numerics

import (
	"fmt"
	"math"
)

// DType identifies a floating-point storage format.
type DType int

const (
	// FP32 is IEEE 754 binary32: 1 sign, 8 exponent, 23 mantissa bits.
	FP32 DType = iota
	// FP16 is IEEE 754 binary16: 1 sign, 5 exponent, 10 mantissa bits.
	FP16
	// BF16 is bfloat16: 1 sign, 8 exponent, 7 mantissa bits (truncated FP32).
	BF16
)

// String returns the conventional name of the format.
func (d DType) String() string {
	switch d {
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	case BF16:
		return "BF16"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Bits returns the total storage width of the format in bits.
func (d DType) Bits() int {
	if d == FP32 {
		return 32
	}
	return 16
}

// ExponentBits returns the width of the exponent field (Table 2).
func (d DType) ExponentBits() int {
	switch d {
	case FP16:
		return 5
	default:
		return 8
	}
}

// MantissaBits returns the width of the fraction field.
func (d DType) MantissaBits() int {
	return d.Bits() - 1 - d.ExponentBits()
}

// MaxFinite returns the largest finite positive value representable in the
// format ("Approximate Range" upper bound in Table 2).
func (d DType) MaxFinite() float64 {
	switch d {
	case FP16:
		return 65504
	case BF16:
		// 0x7F7F = sign 0, exponent 0xFE, mantissa 0x7F.
		return Decode(BF16, 0x7F7F)
	default:
		return math.MaxFloat32
	}
}

// SmallestNormal returns the smallest positive normal value ("Approximate
// Range" lower bound in Table 2).
func (d DType) SmallestNormal() float64 {
	switch d {
	case FP16:
		return Decode(FP16, 0x0400) // 2^-14
	case BF16:
		return Decode(BF16, 0x0080) // 2^-126
	default:
		return math.SmallestNonzeroFloat32 * math.Pow(2, 23) // 2^-126
	}
}

// Encode converts v to the bit pattern of format d using round-to-nearest-
// even. Values beyond the format's range become ±Inf patterns; NaN maps to
// a quiet NaN pattern.
func Encode(d DType, v float64) uint32 {
	switch d {
	case FP32:
		return math.Float32bits(float32(v))
	case BF16:
		return uint32(EncodeBF16(float32(v)))
	case FP16:
		return uint32(EncodeFP16(float32(v)))
	default:
		panic("numerics: unknown dtype")
	}
}

// Decode converts a bit pattern of format d back to float64.
func Decode(d DType, bits uint32) float64 {
	switch d {
	case FP32:
		return float64(math.Float32frombits(bits))
	case BF16:
		return float64(DecodeBF16(uint16(bits)))
	case FP16:
		return float64(DecodeFP16(uint16(bits)))
	default:
		panic("numerics: unknown dtype")
	}
}

// Round returns v after a round trip through format d, i.e. the value the
// hardware would actually hold. Infinities produced by overflow are
// preserved (they then propagate through subsequent arithmetic exactly as
// they would on a GPU).
func Round(d DType, v float64) float64 {
	if d == FP32 {
		return float64(float32(v))
	}
	return Decode(d, Encode(d, v))
}

// RoundSlice requantizes every element of vals to format d in place,
// bit-identical to applying Round elementwise. This is the decode hot
// path's bulk form: every linear-layer output row is rounded after its
// hooks and checker ran, and the per-element Round call chain (Encode,
// Decode, two float64 conversions) costs more than the arithmetic it
// wraps. The BF16 fast path inlines the EncodeBF16/DecodeBF16 round trip
// as pure bit manipulation.
func RoundSlice(d DType, vals []float32) {
	switch d {
	case FP32:
		// float32 storage: values are already exactly representable.
	case BF16:
		for i, v := range vals {
			b := math.Float32bits(v)
			if b&0x7F800000 == 0x7F800000 && b&0x007FFFFF != 0 {
				// NaN: preserve payload top bits, force quiet (EncodeBF16).
				vals[i] = math.Float32frombits((b>>16 | 0x0040) << 16)
				continue
			}
			round := uint32(0x7FFF + (b>>16)&1)
			vals[i] = math.Float32frombits((b + round) >> 16 << 16)
		}
	case FP16:
		for i, v := range vals {
			vals[i] = DecodeFP16(EncodeFP16(v))
		}
	default:
		panic("numerics: unknown dtype")
	}
}

// FlipBit returns the value of v (held in format d) after flipping bit
// position pos, where pos 0 is the least-significant mantissa bit and
// pos == d.Bits()-1 is the sign bit. The paper indexes bits the same way:
// for BF16, "bit position 14" is the most significant exponent bit
// (Figures 9–10), one below the sign bit at position 15.
func FlipBit(d DType, v float64, pos int) float64 {
	if pos < 0 || pos >= d.Bits() {
		panic(fmt.Sprintf("numerics: bit position %d out of range for %v", pos, d))
	}
	return Decode(d, Encode(d, v)^(1<<uint(pos)))
}

// FlipBits flips every listed bit position of v in format d.
func FlipBits(d DType, v float64, positions ...int) float64 {
	bits := Encode(d, v)
	for _, pos := range positions {
		if pos < 0 || pos >= d.Bits() {
			panic(fmt.Sprintf("numerics: bit position %d out of range for %v", pos, d))
		}
		bits ^= 1 << uint(pos)
	}
	return Decode(d, bits)
}

// BitClass describes the role of a bit position within a format.
type BitClass int

const (
	// MantissaBit positions hold fraction bits.
	MantissaBit BitClass = iota
	// ExponentBit positions hold exponent bits.
	ExponentBit
	// SignBit is the most significant bit.
	SignBit
)

// String names the class.
func (c BitClass) String() string {
	switch c {
	case MantissaBit:
		return "mantissa"
	case ExponentBit:
		return "exponent"
	default:
		return "sign"
	}
}

// ClassifyBit reports whether position pos of format d is a mantissa,
// exponent, or sign bit.
func ClassifyBit(d DType, pos int) BitClass {
	switch {
	case pos == d.Bits()-1:
		return SignBit
	case pos >= d.MantissaBits():
		return ExponentBit
	default:
		return MantissaBit
	}
}

// IsDegenerate reports whether v is NaN, infinite, or has magnitude at
// least huge (default threshold used by the output-distortion analysis).
func IsDegenerate(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) >= 1e30
}
