package numerics

import (
	"math"
	"testing"
)

// TestRoundSliceMatchesRound pins the bulk requantizer to the scalar
// Round path bit for bit. The input space is covered exhaustively: for
// each 16-bit format, every float32 whose top 16 bits take each possible
// value is tried with several low-half patterns (the low half is what
// rounding consumes), plus denormals, infinities, and NaN payloads.
func TestRoundSliceMatchesRound(t *testing.T) {
	lows := []uint32{0x0000, 0x0001, 0x7FFF, 0x8000, 0x8001, 0xFFFF}
	for _, d := range []DType{FP32, FP16, BF16} {
		for hi := uint32(0); hi < 1<<16; hi++ {
			for _, lo := range lows {
				bits := hi<<16 | lo
				v := math.Float32frombits(bits)
				// FP32 signaling NaNs: the scalar path's float64 round
				// trip quiets them as an artifact of conversion, while
				// the no-op bulk path preserves the pattern. float32
				// arithmetic can't produce sNaN, so the divergence is
				// unreachable; exempt it rather than emulate the quirk.
				if d == FP32 && bits&0x7F800000 == 0x7F800000 &&
					bits&0x007FFFFF != 0 && bits&0x00400000 == 0 {
					continue
				}
				got := []float32{v}
				RoundSlice(d, got)
				want := float32(Round(d, float64(v)))
				if math.Float32bits(got[0]) != math.Float32bits(want) {
					t.Fatalf("%v RoundSlice(%#08x)=%#08x want %#08x",
						d, bits, math.Float32bits(got[0]), math.Float32bits(want))
				}
			}
		}
	}
}

// TestRoundSliceInPlace checks a multi-element slice is rounded
// elementwise in place, leaving length and order intact.
func TestRoundSliceInPlace(t *testing.T) {
	vals := []float32{1.0000152587890625, -3.14159265, 65505, 1e-40,
		float32(math.Inf(-1)), 0, float32(math.NaN())}
	want := make([]float32, len(vals))
	for i, v := range vals {
		want[i] = float32(Round(BF16, float64(v)))
	}
	RoundSlice(BF16, vals)
	for i := range vals {
		if math.Float32bits(vals[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: got %#08x want %#08x",
				i, math.Float32bits(vals[i]), math.Float32bits(want[i]))
		}
	}
}
