package numerics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable2Traits(t *testing.T) {
	cases := []struct {
		dt       DType
		bits     int
		expBits  int
		mantBits int
	}{
		{FP16, 16, 5, 10},
		{FP32, 32, 8, 23},
		{BF16, 16, 8, 7},
	}
	for _, c := range cases {
		if got := c.dt.Bits(); got != c.bits {
			t.Errorf("%v bits = %d, want %d", c.dt, got, c.bits)
		}
		if got := c.dt.ExponentBits(); got != c.expBits {
			t.Errorf("%v exp bits = %d, want %d", c.dt, got, c.expBits)
		}
		if got := c.dt.MantissaBits(); got != c.mantBits {
			t.Errorf("%v mantissa bits = %d, want %d", c.dt, got, c.mantBits)
		}
	}
}

func TestTable2Ranges(t *testing.T) {
	if FP16.MaxFinite() != 65504 {
		t.Errorf("FP16 max = %g, want 65504", FP16.MaxFinite())
	}
	if got := BF16.MaxFinite(); math.Abs(got-3.3895e38)/3.3895e38 > 0.01 {
		t.Errorf("BF16 max = %g, want ~3.39e38", got)
	}
	if got := FP16.SmallestNormal(); got != math.Pow(2, -14) {
		t.Errorf("FP16 smallest normal = %g, want 2^-14", got)
	}
	if got := BF16.SmallestNormal(); got != math.Pow(2, -126) {
		t.Errorf("BF16 smallest normal = %g, want 2^-126", got)
	}
}

func TestFP16KnownValues(t *testing.T) {
	cases := []struct {
		v    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-2, 0xC000},
		{0.5, 0x3800},
		{65504, 0x7BFF},
		{float32(math.Pow(2, -14)), 0x0400}, // smallest normal
		{float32(math.Pow(2, -24)), 0x0001}, // smallest subnormal
	}
	for _, c := range cases {
		if got := EncodeFP16(c.v); got != c.bits {
			t.Errorf("EncodeFP16(%g) = %#04x, want %#04x", c.v, got, c.bits)
		}
		if got := DecodeFP16(c.bits); got != c.v {
			t.Errorf("DecodeFP16(%#04x) = %g, want %g", c.bits, got, c.v)
		}
	}
}

func TestFP16Overflow(t *testing.T) {
	if got := EncodeFP16(70000); got != 0x7C00 {
		t.Errorf("EncodeFP16(70000) = %#04x, want +Inf", got)
	}
	if got := EncodeFP16(-70000); got != 0xFC00 {
		t.Errorf("EncodeFP16(-70000) = %#04x, want -Inf", got)
	}
	// 65520 is the tie between 65504 and out-of-range 65536: IEEE rounds
	// to even, i.e. to infinity.
	if got := EncodeFP16(65520); got != 0x7C00 {
		t.Errorf("EncodeFP16(65520) = %#04x, want +Inf", got)
	}
	if got := EncodeFP16(65519); got != 0x7BFF {
		t.Errorf("EncodeFP16(65519) = %#04x, want max finite", got)
	}
}

func TestFP16Underflow(t *testing.T) {
	tiny := float32(math.Pow(2, -26)) // below half the smallest subnormal
	if got := EncodeFP16(tiny); got != 0 {
		t.Errorf("EncodeFP16(2^-26) = %#04x, want 0", got)
	}
	// 2^-25 ties between 0 and the smallest subnormal; even = 0.
	if got := EncodeFP16(float32(math.Pow(2, -25))); got != 0 {
		t.Errorf("EncodeFP16(2^-25) = %#04x, want 0 (ties to even)", got)
	}
	justAbove := float32(math.Pow(2, -25) * 1.5)
	if got := EncodeFP16(justAbove); got != 1 {
		t.Errorf("EncodeFP16(1.5*2^-25) = %#04x, want 1", got)
	}
}

func TestFP16NaN(t *testing.T) {
	nan := float32(math.NaN())
	h := EncodeFP16(nan)
	if h&0x7C00 != 0x7C00 || h&0x3FF == 0 {
		t.Errorf("EncodeFP16(NaN) = %#04x, not a NaN pattern", h)
	}
	if !math.IsNaN(float64(DecodeFP16(h))) {
		t.Error("DecodeFP16 of NaN pattern is not NaN")
	}
}

func TestBF16Truncation(t *testing.T) {
	// bfloat16 is float32's upper half: decoding any pattern then
	// re-encoding must be the identity (except NaN payloads).
	for _, h := range []uint16{0x0000, 0x3F80, 0xC000, 0x7F7F, 0x0080, 0x0001} {
		if got := EncodeBF16(DecodeBF16(h)); got != h {
			t.Errorf("BF16 roundtrip %#04x -> %#04x", h, got)
		}
	}
	if DecodeBF16(0x3F80) != 1.0 {
		t.Error("BF16 0x3F80 should decode to 1.0")
	}
}

// TestRoundIdempotent checks Round(Round(x)) == Round(x) for all formats.
func TestRoundIdempotent(t *testing.T) {
	f := func(v float64) bool {
		for _, dt := range []DType{FP16, BF16, FP32} {
			once := Round(dt, v)
			twice := Round(dt, once)
			if once != twice && !(math.IsNaN(once) && math.IsNaN(twice)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEncodeDecodeRoundtrip checks that decoding any 16-bit pattern and
// re-encoding reproduces the pattern (canonical-form property) for FP16.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		v := DecodeFP16(uint16(h))
		if math.IsNaN(float64(v)) {
			continue // NaN payloads are canonicalized
		}
		if got := EncodeFP16(v); got != uint16(h) {
			t.Fatalf("FP16 pattern %#04x decodes to %g, re-encodes to %#04x", h, v, got)
		}
	}
}

// TestFP16MatchesReference cross-checks the encoder against a slow
// arithmetic reference over random values.
func TestFP16MatchesReference(t *testing.T) {
	ref := func(v float32) uint16 {
		// Reference: use float64 math to find nearest representable.
		abs := math.Abs(float64(v))
		sign := uint16(0)
		if math.Signbit(float64(v)) {
			sign = 0x8000
		}
		switch {
		case math.IsNaN(float64(v)):
			return sign | 0x7E00
		case abs > 65519: // rounds past max finite
			return sign | 0x7C00
		case abs < math.Pow(2, -25), abs == math.Pow(2, -25):
			if abs == math.Pow(2, -25) {
				return sign // tie to even zero
			}
			return sign
		}
		// Find exponent.
		e := math.Floor(math.Log2(abs))
		if e < -14 {
			e = -14 // subnormal
		}
		if e > 15 {
			e = 15
		}
		m := abs/math.Pow(2, e)*1024 - 1024
		if e == -14 && abs < math.Pow(2, -14) {
			m = abs / math.Pow(2, -24) // subnormal mantissa units
			// round half to even
			mr := math.Round(m)
			if math.Abs(m-math.Trunc(m)-0.5) < 1e-12 {
				mr = math.Trunc(m)
				if math.Mod(mr, 2) == 1 {
					mr++
				}
			}
			return sign | uint16(mr)
		}
		mr := math.Round(m)
		if math.Abs(m-math.Trunc(m)-0.5) < 1e-12 {
			mr = math.Trunc(m)
			if math.Mod(mr, 2) == 1 {
				mr++
			}
		}
		if mr >= 1024 {
			mr = 0
			e++
			if e > 15 {
				return sign | 0x7C00
			}
		}
		return sign | uint16(e+15)<<10 | uint16(mr)
	}
	f := func(v float32) bool {
		got := EncodeFP16(v)
		want := ref(v)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestFlipBitInvolution: flipping the same bit twice restores the value.
func TestFlipBitInvolution(t *testing.T) {
	f := func(v float64, posRaw uint8) bool {
		for _, dt := range []DType{FP16, BF16, FP32} {
			pos := int(posRaw) % dt.Bits()
			canon := Round(dt, v)
			if math.IsNaN(canon) {
				continue
			}
			flipped := FlipBit(dt, canon, pos)
			if math.IsNaN(flipped) {
				// NaN payloads are canonicalized on encode, so the flip
				// is not invertible through a NaN — by design.
				continue
			}
			back := FlipBit(dt, flipped, pos)
			if back != canon && !(math.IsNaN(back) && math.IsNaN(canon)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFlipBitsMSBExplosion(t *testing.T) {
	// Flipping the exponent MSB of a small BF16 weight produces a huge
	// value — the paper's 0.5 -> ~1.7e38 example.
	got := FlipBit(BF16, 0.5, 14)
	if math.Abs(got-1.7014118e38)/1.7014118e38 > 1e-3 {
		t.Errorf("BF16 MSB flip of 0.5 = %g, want ~1.7e38", got)
	}
	// In FP16 the same logical flip is bounded by 65504.
	got16 := FlipBit(FP16, 0.5, 13) // FP16 exponent MSB is bit 13
	if math.Abs(got16) > 65504 {
		t.Errorf("FP16 exponent-MSB flip exceeded max finite: %g", got16)
	}
}

func TestClassifyBit(t *testing.T) {
	if ClassifyBit(BF16, 15) != SignBit {
		t.Error("BF16 bit 15 should be sign")
	}
	if ClassifyBit(BF16, 14) != ExponentBit {
		t.Error("BF16 bit 14 should be exponent")
	}
	if ClassifyBit(BF16, 6) != MantissaBit {
		t.Error("BF16 bit 6 should be mantissa")
	}
	if ClassifyBit(FP16, 10) != ExponentBit {
		t.Error("FP16 bit 10 should be exponent")
	}
	if ClassifyBit(FP16, 9) != MantissaBit {
		t.Error("FP16 bit 9 should be mantissa")
	}
	if ClassifyBit(FP32, 31) != SignBit {
		t.Error("FP32 bit 31 should be sign")
	}
}

func TestIsDegenerate(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e31, -2e35} {
		if !IsDegenerate(v) {
			t.Errorf("IsDegenerate(%g) = false", v)
		}
	}
	for _, v := range []float64{0, 1, -65504, 1e29} {
		if IsDegenerate(v) {
			t.Errorf("IsDegenerate(%g) = true", v)
		}
	}
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range bit")
		}
	}()
	FlipBit(FP16, 1, 16)
}
