package numerics

import (
	"math"
	"testing"
)

// FuzzHalfRoundTrip asserts the half-precision codecs are bijective on
// non-NaN payloads: every 16-bit pattern that decodes to a non-NaN value
// must encode back to the identical pattern. This is what fault injection
// relies on — FlipBits XORs the encoded pattern, so a lossy round trip
// would silently move the flip to a different value. NaN patterns are
// excluded: both codecs canonicalize them to a quiet NaN by design.
func FuzzHalfRoundTrip(f *testing.F) {
	f.Add(uint16(0x0000))
	f.Add(uint16(0x8000)) // -0
	f.Add(uint16(0x7C00)) // FP16 +Inf
	f.Add(uint16(0x7F80)) // BF16 +Inf
	f.Add(uint16(0x0001)) // smallest subnormal
	f.Add(uint16(0x03FF)) // largest FP16 subnormal
	f.Add(uint16(0x0400)) // smallest FP16 normal
	f.Add(uint16(0x7BFF)) // largest finite FP16
	f.Add(uint16(0x7F7F)) // largest finite BF16
	f.Add(uint16(0x3C00))
	f.Add(uint16(0xC000))

	f.Fuzz(func(t *testing.T, bits uint16) {
		if v := DecodeFP16(bits); !math.IsNaN(float64(v)) {
			if got := EncodeFP16(v); got != bits {
				t.Errorf("FP16 %#04x -> %g -> %#04x", bits, v, got)
			}
		}
		if v := DecodeBF16(bits); !math.IsNaN(float64(v)) {
			if got := EncodeBF16(v); got != bits {
				t.Errorf("BF16 %#04x -> %g -> %#04x", bits, v, got)
			}
		}
		// The DType-level wrappers agree with the direct codecs.
		for _, d := range []DType{FP16, BF16} {
			v := Decode(d, uint32(bits))
			if math.IsNaN(v) {
				continue
			}
			if got := Encode(d, v); got != uint32(bits) {
				t.Errorf("%v Decode/Encode %#04x -> %g -> %#x", d, bits, v, got)
			}
		}
	})
}
