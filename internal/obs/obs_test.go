package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestTraceparentRoundTrip: a context formatted as a traceparent header
// parses back to the identical context.
func TestTraceparentRoundTrip(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	rec := NewRecorder(Config{Service: "t", Sample: 1})
	ctx := rec.StartTrace()
	if !ctx.Valid() {
		t.Fatalf("StartTrace returned invalid context %+v", ctx)
	}
	hdr := ctx.Traceparent()
	got, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("own header %q did not parse", hdr)
	}
	if got != ctx {
		t.Fatalf("round trip: got %+v, want %+v", got, ctx)
	}
}

// TestParseTraceparentRejects pins the malformed-header table: every
// entry must be silently rejected (ok=false, zero context) — the HTTP
// layers never 4xx on a bad traceparent.
func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"garbage", "not-a-traceparent"},
		{"short", valid[:40]},
		{"long", valid + "-extra"},
		{"future version", "99" + valid[2:]},
		{"bad dash", strings.Replace(valid, "-", "_", 1)},
		{"non-hex trace", "00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"},
		{"non-hex span", "00-0af7651916cd43dd8448eb211c80319c-z7ad6b7169203331-01"},
		{"zero trace", "00-00000000000000000000000000000000-b7ad6b7169203331-01"},
		{"zero span", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01"},
	}
	for _, tc := range cases {
		if got, ok := ParseTraceparent(tc.in); ok || got != (SpanContext{}) {
			t.Errorf("%s: ParseTraceparent(%q) = %+v, %v; want zero, false", tc.name, tc.in, got, ok)
		}
	}
	// Case and whitespace are forgiven, per W3C trace context.
	if _, ok := ParseTraceparent("  " + strings.ToUpper(valid) + " "); !ok {
		t.Error("uppercase/padded valid header rejected")
	}
}

// TestSampleRoot pins the deterministic every-Nth stride.
func TestSampleRoot(t *testing.T) {
	rec := NewRecorder(Config{Sample: 3})
	var got []bool
	for i := 0; i < 7; i++ {
		got = append(got, rec.SampleRoot())
	}
	want := []bool{true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stride-3 sampling = %v, want %v", got, want)
		}
	}
	off := NewRecorder(Config{Sample: 0})
	if off.Enabled() || off.SampleRoot() {
		t.Fatal("Sample=0 recorder sampled a root")
	}
}

// TestRecorderRingAndSink: the ring keeps the newest spans (newest
// first), the sink sees every span, and a sink error latches without
// stopping the ring.
func TestRecorderRingAndSink(t *testing.T) {
	var sunk []Span
	sinkErr := errors.New("disk full")
	fail := false
	rec := NewRecorder(Config{Service: "svc", Sample: 1, Recent: 4, Sink: func(sp Span) error {
		if fail {
			return sinkErr
		}
		sunk = append(sunk, sp)
		return nil
	}})
	ctx := rec.StartTrace()
	for i := 0; i < 6; i++ {
		rec.Record(NewSpan(rec.Child(ctx), ctx.Span, "s", time.Unix(0, int64(i)), time.Millisecond, Int("i", int64(i))))
	}
	recent := rec.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(recent))
	}
	for i, sp := range recent {
		if want := int64(5 - i); sp.Attrs[0].Int != want {
			t.Fatalf("Recent[%d] = span %d, want %d (newest first)", i, sp.Attrs[0].Int, want)
		}
		if sp.Schema != SchemaVersion || sp.Service != "svc" {
			t.Fatalf("span missing schema/service stamp: %+v", sp)
		}
	}
	if len(sunk) != 6 || rec.Count() != 6 {
		t.Fatalf("sink saw %d spans, Count()=%d; want 6", len(sunk), rec.Count())
	}
	fail = true
	rec.Record(NewSpan(ctx, "", "root", time.Unix(0, 9), time.Second))
	if rec.Err() != sinkErr {
		t.Fatalf("Err() = %v, want latched sink error", rec.Err())
	}
	if rec.Recent(1)[0].Name != "root" {
		t.Fatal("ring stopped recording after sink error")
	}
}

// TestSpanWriterRoundTrip: spans written as JSONL read back identical,
// and a schema mismatch is refused rather than misread.
func TestSpanWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSpanWriter(&buf)
	rec := NewRecorder(Config{Service: "w", Sample: 1, Sink: sw.Write})
	ctx := rec.StartTrace()
	rec.Record(NewSpan(ctx, "", "root", time.Unix(1, 0), 2*time.Second, Str("k", "v"), Num("f", 0.5)))
	child := rec.Child(ctx)
	rec.Record(NewSpan(child, ctx.Span, "child", time.Unix(2, 0), time.Second, Int("n", 7)))
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != 2 {
		t.Fatalf("writer Count() = %d, want 2", sw.Count())
	}

	got, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d spans, want 2", len(got))
	}
	if got[0].Trace != ctx.Trace || got[1].Trace != ctx.Trace {
		t.Fatal("trace IDs did not survive the round trip")
	}
	if got[1].Parent != ctx.Span || got[1].Attrs[0].Int != 7 {
		t.Fatalf("child span mangled: %+v", got[1])
	}

	// Schema refusal: a record from a different schema version errors.
	tampered := strings.Replace(buf.String(), `"schema":1`, `"schema":99`, 1)
	if _, err := ReadSpans(strings.NewReader(tampered)); err == nil {
		t.Fatal("ReadSpans accepted a foreign schema version")
	} else if !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("schema refusal error unhelpful: %v", err)
	}

	// Unknown-field refusal: a span record carrying a key this reader
	// doesn't know means a newer writer — refuse, don't drop.
	drifted := strings.Replace(buf.String(), `"schema":1`, `"schema":1,"from_the_future":true`, 1)
	if _, err := ReadSpans(strings.NewReader(drifted)); err == nil ||
		!strings.Contains(err.Error(), "from_the_future") {
		t.Fatalf("ReadSpans did not reject an unknown field: %v", err)
	}
}

// TestChildContinuesTrace: children share the root's trace with fresh
// span IDs; an invalid parent yields a fresh root.
func TestChildContinuesTrace(t *testing.T) {
	rec := NewRecorder(Config{Sample: 1})
	root := rec.StartTrace()
	c1, c2 := rec.Child(root), rec.Child(root)
	if c1.Trace != root.Trace || c2.Trace != root.Trace {
		t.Fatal("children left the root's trace")
	}
	if c1.Span == root.Span || c1.Span == c2.Span {
		t.Fatal("span IDs collided")
	}
	fresh := rec.Child(SpanContext{})
	if !fresh.Valid() || fresh.Trace == root.Trace {
		t.Fatalf("invalid parent should yield a fresh root, got %+v", fresh)
	}
}
