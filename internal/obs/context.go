package obs

import "strings"

// TraceparentHeader is the HTTP header that carries trace context over
// the /api/v1 wire, modeled on the W3C Trace Context `traceparent`
// field: `00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>`.
// Go's http canonicalizes header names, so the constant's case is
// cosmetic; parsing is case-insensitive by construction.
const TraceparentHeader = "Traceparent"

// SpanContext identifies a position in a trace: the end-to-end trace ID
// plus the span that is the current parent. The zero value is "no
// context" and is invalid.
type SpanContext struct {
	Trace string // 32 lowercase hex digits
	Span  string // 16 lowercase hex digits
}

// Valid reports whether the context carries well-formed, non-zero IDs.
func (c SpanContext) Valid() bool {
	return isHex(c.Trace, 32) && isHex(c.Span, 16) &&
		!allZero(c.Trace) && !allZero(c.Span)
}

// Traceparent renders the context as a traceparent header value. The
// sampled flag is always 01: llmfi only propagates contexts it intends
// to record.
func (c SpanContext) Traceparent() string {
	return "00-" + c.Trace + "-" + c.Span + "-01"
}

// ParseTraceparent parses a traceparent header value. Malformed,
// missing, or foreign-version values yield ok=false; callers must treat
// that as "no context" and continue — trace context is advisory and can
// never fail a request.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.TrimSpace(strings.ToLower(h))
	// 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(h) != 55 {
		return SpanContext{}, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	ver, tr, sp, flags := h[:2], h[3:35], h[36:52], h[53:]
	// Only version 00 is understood; future versions may change the
	// field layout, so refuse rather than guess.
	if ver != "00" {
		return SpanContext{}, false
	}
	if !isHex(flags, 2) || !isHex(tr, 32) || !isHex(sp, 16) {
		return SpanContext{}, false
	}
	if allZero(tr) || allZero(sp) {
		return SpanContext{}, false
	}
	return SpanContext{Trace: tr, Span: sp}, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
