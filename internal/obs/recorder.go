package obs

import (
	"sync"
	"time"
)

// Config configures a Recorder.
type Config struct {
	// Service names the process role stamped on every span this
	// recorder emits (serve, campaign, coordinator, worker).
	Service string
	// Sample controls root sampling: 0 disables recording entirely,
	// 1 records every root, N records every Nth root (the first, the
	// N+1th, ...). Child spans follow their root's decision — the
	// caller only starts a trace after SampleRoot says yes.
	Sample int
	// Sink, when set, receives every recorded span (e.g. a SpanWriter).
	// A sink error stops further sink writes and is surfaced via Err;
	// the in-memory ring keeps working.
	Sink func(Span) error
	// Recent bounds the in-memory ring of recent spans served to the
	// dashboard. Default 64.
	Recent int
}

// Recorder samples, assembles, and fans out spans. All methods are safe
// for concurrent use and safe on a nil receiver (no-ops reporting
// disabled), so call sites need no nil guards.
type Recorder struct {
	service string
	sample  int
	sink    func(Span) error

	mu      sync.Mutex
	ring    []Span //llmfi:guardedby mu — capacity Recent, oldest overwritten
	next    int    //llmfi:guardedby mu — next ring slot
	filled  bool   //llmfi:guardedby mu
	roots   uint64 //llmfi:guardedby mu — roots offered to SampleRoot
	count   int    //llmfi:guardedby mu — spans recorded
	sinkErr error  //llmfi:guardedby mu
}

// NewRecorder builds a Recorder from cfg. A Sample of 0 yields a
// recorder whose Enabled() is false; callers may still hold it.
func NewRecorder(cfg Config) *Recorder {
	n := cfg.Recent
	if n <= 0 {
		n = 64
	}
	s := cfg.Sample
	if s < 0 {
		s = 0
	}
	return &Recorder{
		service: cfg.Service,
		sample:  s,
		sink:    cfg.Sink,
		ring:    make([]Span, n),
	}
}

// Enabled reports whether this recorder can record anything at all.
func (r *Recorder) Enabled() bool { return r != nil && r.sample > 0 }

// SampleRoot consumes one root-sampling slot and reports whether the
// caller should record this root (and its children). Deterministic
// every-Nth counting, not randomness: observability must never consume
// campaign randomness.
func (r *Recorder) SampleRoot() bool {
	if !r.Enabled() {
		return false
	}
	r.mu.Lock()
	n := r.roots
	r.roots++
	r.mu.Unlock()
	return n%uint64(r.sample) == 0
}

// StartTrace mints a fresh root context.
func (r *Recorder) StartTrace() SpanContext {
	return SpanContext{Trace: newTraceID(), Span: newSpanID()}
}

// Child mints a context continuing parent's trace with a new span ID.
// An invalid parent yields a fresh root instead, so callers can chain
// unconditionally.
func (r *Recorder) Child(parent SpanContext) SpanContext {
	if !parent.Valid() {
		return r.StartTrace()
	}
	return SpanContext{Trace: parent.Trace, Span: newSpanID()}
}

// Record stamps schema and service on sp and stores it (ring + sink).
// No-op when the recorder is disabled.
func (r *Recorder) Record(sp Span) {
	if !r.Enabled() {
		return
	}
	sp.Schema = SchemaVersion
	if sp.Service == "" {
		sp.Service = r.service
	}
	r.mu.Lock()
	r.ring[r.next] = sp
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.filled = true
	}
	r.count++
	sink, ok := r.sink, r.sinkErr == nil
	r.mu.Unlock()
	if ok && sink != nil {
		if err := sink(sp); err != nil {
			r.mu.Lock()
			if r.sinkErr == nil {
				r.sinkErr = err
			}
			r.mu.Unlock()
		}
	}
}

// Recent returns up to n recorded spans, newest first. n <= 0 means the
// whole ring.
func (r *Recorder) Recent(n int) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.filled {
		size = len(r.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.ring)
		}
		out = append(out, r.ring[idx])
	}
	return out
}

// Count returns the number of spans recorded so far.
func (r *Recorder) Count() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Err returns the first sink error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// NewSpan assembles a span in ctx's trace. parent is the enclosing
// span's ID ("" for a trace root); start/d come from the caller's
// clock-seam measurements.
func NewSpan(ctx SpanContext, parent, name string, start time.Time, d time.Duration, attrs ...Attr) Span {
	return Span{
		Trace:   ctx.Trace,
		ID:      ctx.Span,
		Parent:  parent,
		Name:    name,
		Start:   start.UnixNano(),
		Seconds: d.Seconds(),
		Attrs:   attrs,
	}
}
