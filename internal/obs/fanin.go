package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Label is one Prometheus label pair.
type Label struct {
	Key string
	Val string
}

// Sample is one parsed Prometheus sample line.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ParseMetricsText parses Prometheus text exposition format 0.0.4 into
// samples, skipping comment/TYPE/HELP lines. It understands quoted
// label values with \\, \" and \n escapes. Lines that do not parse are
// reported as errors: a worker /metrics surface is ours end to end, so
// malformed lines indicate a bug, not foreign input.
func ParseMetricsText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		smp, err := parseSampleLine(s)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", line, err)
		}
		out = append(out, smp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(s string) (Sample, error) {
	var smp Sample
	i := strings.IndexAny(s, "{ \t")
	if i < 0 {
		return smp, fmt.Errorf("no value: %q", s)
	}
	smp.Name = s[:i]
	rest := s[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest[1:])
		if err != nil {
			return smp, err
		}
		smp.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; llmfi surfaces never emit one,
	// but tolerate it for robustness.
	if j := strings.IndexAny(rest, " \t"); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return smp, fmt.Errorf("bad value %q: %v", rest, err)
	}
	smp.Value = v
	return smp, nil
}

// parseLabels parses `key="val",...}` returning the labels and the text
// after the closing brace.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, ", ")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		key := s[:eq]
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[1] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[1])
				default:
					val.WriteByte(s[1])
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		labels = append(labels, Label{Key: key, Val: val.String()})
	}
}

// scrapeState is one registered worker's latest scrape. Samples are
// retained across scrape failures so a churned worker's last-known
// series stay visible (marked down via llmfi_fleet_worker_up 0) instead
// of vanishing from the aggregate.
type scrapeState struct {
	addr    string
	up      bool
	scrapes uint64
	errors  uint64
	samples []Sample
}

// FanIn scrapes registered workers' /metrics endpoints and re-exports
// the union as aggregated llmfi_fleet_* series: per family, a sum and
// max across workers plus the per-worker breakdown.
type FanIn struct {
	client *http.Client

	mu      sync.Mutex
	workers map[string]*scrapeState //llmfi:guardedby mu
}

// NewFanIn builds a FanIn scraping via client (nil for a 5s-timeout
// default).
func NewFanIn(client *http.Client) *FanIn {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &FanIn{client: client, workers: make(map[string]*scrapeState)}
}

// Register adds (or re-addresses) a worker's metrics endpoint. addr is
// a full URL base, e.g. "http://127.0.0.1:9431"; the fan-in appends
// /metrics. Registering an empty addr is a no-op: workers without
// -http simply don't participate.
func (f *FanIn) Register(worker, addr string) {
	if worker == "" || addr == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.workers[worker]
	if st == nil {
		st = &scrapeState{}
		f.workers[worker] = st
	}
	st.addr = addr
}

// Workers returns the registered worker names, sorted.
func (f *FanIn) Workers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.workers))
	for w := range f.workers {
		names = append(names, w)
	}
	sort.Strings(names)
	return names
}

// ScrapeOnce scrapes every registered worker once, sequentially in
// sorted-name order. Failures mark the worker down and retain its last
// samples.
func (f *FanIn) ScrapeOnce(ctx context.Context) {
	for _, name := range f.Workers() {
		f.mu.Lock()
		st := f.workers[name]
		addr := ""
		if st != nil {
			addr = st.addr
		}
		f.mu.Unlock()
		if addr == "" {
			continue
		}
		samples, err := f.scrape(ctx, addr)
		f.mu.Lock()
		if st := f.workers[name]; st != nil {
			st.scrapes++
			if err != nil {
				st.errors++
				st.up = false
			} else {
				st.up = true
				st.samples = samples
			}
		}
		f.mu.Unlock()
	}
}

func (f *FanIn) scrape(ctx context.Context, addr string) ([]Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("scrape %s: status %d", addr, resp.StatusCode)
	}
	return ParseMetricsText(io.LimitReader(resp.Body, 4<<20))
}

// Run scrapes on the given interval until ctx is done. Intended as a
// coordinator-side goroutine.
func (f *FanIn) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = 2 * time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	f.ScrapeOnce(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			f.ScrapeOnce(ctx)
		}
	}
}

// labelsKey renders labels canonically for grouping and output.
func labelsKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		parts = append(parts, l.Key+`="`+escapeLabel(l.Val)+`"`)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WriteText renders the fan-in state as Prometheus text: per-worker
// liveness/scrape counters, then for every scraped llmfi_* family the
// fleet aggregate (sum and max across workers) and the per-worker
// series, deterministically ordered.
func (f *FanIn) WriteText(w io.Writer) error {
	f.mu.Lock()
	type workerSnap struct {
		name string
		st   scrapeState
	}
	snaps := make([]workerSnap, 0, len(f.workers))
	for name, st := range f.workers {
		snaps = append(snaps, workerSnap{name: name, st: *st})
	}
	f.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# HELP llmfi_fleet_worker_up Whether the last scrape of this worker's /metrics succeeded.\n")
	fmt.Fprintf(bw, "# TYPE llmfi_fleet_worker_up gauge\n")
	for _, s := range snaps {
		up := 0
		if s.st.up {
			up = 1
		}
		fmt.Fprintf(bw, "llmfi_fleet_worker_up{worker=%q} %d\n", s.name, up)
	}
	fmt.Fprintf(bw, "# HELP llmfi_fleet_worker_scrapes_total Scrape attempts against this worker.\n")
	fmt.Fprintf(bw, "# TYPE llmfi_fleet_worker_scrapes_total counter\n")
	for _, s := range snaps {
		fmt.Fprintf(bw, "llmfi_fleet_worker_scrapes_total{worker=%q} %d\n", s.name, s.st.scrapes)
	}
	fmt.Fprintf(bw, "# HELP llmfi_fleet_worker_scrape_errors_total Failed scrapes against this worker.\n")
	fmt.Fprintf(bw, "# TYPE llmfi_fleet_worker_scrape_errors_total counter\n")
	for _, s := range snaps {
		fmt.Fprintf(bw, "llmfi_fleet_worker_scrape_errors_total{worker=%q} %d\n", s.name, s.st.errors)
	}

	// Group samples: family -> labelset key -> per-worker values.
	type cell struct {
		worker string
		labels string
		value  float64
	}
	families := make(map[string][]cell)
	for _, s := range snaps {
		for _, smp := range s.st.samples {
			if !strings.HasPrefix(smp.Name, "llmfi_") {
				continue
			}
			// Fleet-of-fleets guard: don't re-aggregate series that are
			// themselves fan-in output.
			if strings.HasPrefix(smp.Name, "llmfi_fleet_") {
				continue
			}
			fam := "llmfi_fleet_" + strings.TrimPrefix(smp.Name, "llmfi_")
			families[fam] = append(families[fam], cell{
				worker: s.name,
				labels: labelsKey(smp.Labels),
				value:  smp.Value,
			})
		}
	}
	famNames := make([]string, 0, len(families))
	for fam := range families {
		famNames = append(famNames, fam)
	}
	sort.Strings(famNames)
	for _, fam := range famNames {
		cells := families[fam]
		fmt.Fprintf(bw, "# HELP %s Fleet aggregate of the workers' %s.\n", fam, "llmfi_"+strings.TrimPrefix(fam, "llmfi_fleet_"))
		fmt.Fprintf(bw, "# TYPE %s untyped\n", fam)
		// Aggregate per original labelset across workers.
		sums := make(map[string]float64)
		maxs := make(map[string]float64)
		seen := make(map[string]bool)
		var keys []string
		for _, c := range cells {
			if !seen[c.labels] {
				seen[c.labels] = true
				keys = append(keys, c.labels)
				maxs[c.labels] = c.value
			} else if c.value > maxs[c.labels] {
				maxs[c.labels] = c.value
			}
			sums[c.labels] += c.value
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, "%s{%s} %s\n", fam, joinLabels(`agg="sum"`, k), fmtVal(sums[k]))
			fmt.Fprintf(bw, "%s{%s} %s\n", fam, joinLabels(`agg="max"`, k), fmtVal(maxs[k]))
		}
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].worker != cells[j].worker {
				return cells[i].worker < cells[j].worker
			}
			return cells[i].labels < cells[j].labels
		})
		for _, c := range cells {
			fmt.Fprintf(bw, "%s{%s} %s\n", fam, joinLabels(`worker="`+escapeLabel(c.worker)+`"`, c.labels), fmtVal(c.value))
		}
	}
	return bw.Flush()
}

func joinLabels(first, rest string) string {
	if rest == "" {
		return first
	}
	return first + "," + rest
}

func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
