package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// SpanWriter appends spans to a JSONL stream, one span per line. It is
// the obs sibling of report.TraceWriter: buffered, mutex-guarded, and
// counted. Use its Write as a Recorder sink.
type SpanWriter struct {
	mu    sync.Mutex
	w     *bufio.Writer //llmfi:guardedby mu
	c     io.Closer
	count int //llmfi:guardedby mu
}

// NewSpanWriter wraps w. If w is also an io.Closer, Close closes it.
func NewSpanWriter(w io.Writer) *SpanWriter {
	sw := &SpanWriter{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		sw.c = c
	}
	return sw
}

// OpenSpans creates (truncating) a span JSONL file at path.
func OpenSpans(path string) (*SpanWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("open spans: %w", err)
	}
	return NewSpanWriter(f), nil
}

// Write appends one span line.
func (w *SpanWriter) Write(sp Span) error {
	b, err := json.Marshal(sp)
	if err != nil {
		return fmt.Errorf("marshal span: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of spans written.
func (w *SpanWriter) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Close flushes buffered lines and closes the underlying file, if any.
func (w *SpanWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.w.Flush()
	if w.c != nil {
		if cerr := w.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadSpans decodes a span JSONL stream. It refuses records whose
// schema differs from SchemaVersion — a span file from a different
// build must be re-read by that build's tooling, not misinterpreted —
// and rejects unknown fields for the same reason: extra keys mean the
// file was written by a newer schema than this reader understands.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var out []Span
	for {
		var sp Span
		if err := dec.Decode(&sp); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("span record %d: %w", len(out), err)
		}
		if sp.Schema != SchemaVersion {
			return nil, fmt.Errorf("span record %d: schema %d, want %d", len(out), sp.Schema, SchemaVersion)
		}
		out = append(out, sp)
	}
}
