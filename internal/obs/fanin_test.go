package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestParseMetricsText pins the exposition parser: labels (with
// escapes), timestamps tolerated, comments skipped, malformed rejected.
func TestParseMetricsText(t *testing.T) {
	in := `# HELP llmfi_x A thing.
# TYPE llmfi_x counter
llmfi_x 41
llmfi_y{worker="w1",q="a\"b\\c\nd"} 2.5
llmfi_z{s="v"} 7 1712345678
`
	got, err := ParseMetricsText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(got))
	}
	if got[0].Name != "llmfi_x" || got[0].Value != 41 || got[0].Labels != nil {
		t.Fatalf("sample 0 = %+v", got[0])
	}
	if got[1].Labels[1].Val != "a\"b\\c\nd" {
		t.Fatalf("escape decoding: %q", got[1].Labels[1].Val)
	}
	if got[2].Value != 7 {
		t.Fatalf("timestamped sample value = %v", got[2].Value)
	}
	for _, bad := range []string{"just_a_name\n", "llmfi_x{unterminated 1\n", "llmfi_x notanumber\n"} {
		if _, err := ParseMetricsText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMetricsText accepted %q", bad)
		}
	}
}

// metricsStub serves a fixed Prometheus body.
func metricsStub(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFanInAggregates: two workers' series re-export as llmfi_fleet_*
// with sum/max aggregates plus per-worker rows, and non-llmfi series
// (plus any llmfi_fleet_* input — the fleet-of-fleets guard) stay out.
func TestFanInAggregates(t *testing.T) {
	w1 := metricsStub(t, "llmfi_worker_self_trials_total 10\nllmfi_lat{q=\"p50\"} 3\ngo_goroutines 99\n")
	w2 := metricsStub(t, "llmfi_worker_self_trials_total 32\nllmfi_lat{q=\"p50\"} 5\nllmfi_fleet_worker_up{worker=\"x\"} 1\n")

	f := NewFanIn(nil)
	f.Register("w1", w1.URL)
	f.Register("w2", w2.URL)
	f.ScrapeOnce(context.Background())

	var b strings.Builder
	if err := f.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`llmfi_fleet_worker_up{worker="w1"} 1`,
		`llmfi_fleet_worker_up{worker="w2"} 1`,
		`llmfi_fleet_worker_self_trials_total{agg="sum"} 42`,
		`llmfi_fleet_worker_self_trials_total{agg="max"} 32`,
		`llmfi_fleet_worker_self_trials_total{worker="w1"} 10`,
		`llmfi_fleet_worker_self_trials_total{worker="w2"} 32`,
		`llmfi_fleet_lat{agg="sum",q="p50"} 8`,
		`llmfi_fleet_lat{worker="w2",q="p50"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fan-in output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "go_goroutines") {
		t.Error("non-llmfi series leaked into the fleet export")
	}
	if strings.Contains(out, `llmfi_fleet_fleet_`) || strings.Contains(out, `worker="x"`) {
		t.Error("fan-in re-aggregated fleet output (fleet-of-fleets guard failed)")
	}
}

// TestFanInChurn: a worker that dies mid-campaign goes up=0 but its
// last-scraped series survive in the aggregate — per-worker labels and
// all — so operators can still see what it contributed.
func TestFanInChurn(t *testing.T) {
	w1 := metricsStub(t, "llmfi_worker_self_trials_total 10\n")
	w2 := metricsStub(t, "llmfi_worker_self_trials_total 5\n")

	f := NewFanIn(nil)
	f.Register("w1", w1.URL)
	f.Register("w2", w2.URL)
	f.ScrapeOnce(context.Background())
	w2.Close() // SIGKILL'd worker: connection refused on the next scrape
	f.ScrapeOnce(context.Background())

	var b strings.Builder
	if err := f.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`llmfi_fleet_worker_up{worker="w1"} 1`,
		`llmfi_fleet_worker_up{worker="w2"} 0`,
		`llmfi_fleet_worker_self_trials_total{agg="sum"} 15`,
		`llmfi_fleet_worker_self_trials_total{worker="w2"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-churn output missing %q\n%s", want, out)
		}
	}
	if !strings.Contains(out, `llmfi_fleet_worker_scrape_errors_total{worker="w2"} 1`) {
		t.Errorf("scrape error not counted:\n%s", out)
	}
}

// TestDashboardHandler smoke-tests the zero-dependency dashboard: GET
// renders the data fn's sections and spans; non-GET is rejected.
func TestDashboardHandler(t *testing.T) {
	rec := NewRecorder(Config{Service: "t", Sample: 1})
	ctx := rec.StartTrace()
	rec.Record(Span{Trace: ctx.Trace, ID: ctx.Span, Name: "request", Seconds: 0.25})
	h := DashboardHandler(func() DashboardData {
		return DashboardData{
			Title:    "llmfi fleet",
			Version:  "0.0.0-test",
			Sections: []DashboardSection{{Title: "Serving", Rows: [][2]string{{"in flight", "3"}}}},
			Metrics:  "llmfi_x 1\n",
			Spans:    rec.Recent(8),
		}
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw := string(data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/fleet: status %d", resp.StatusCode)
	}
	for _, want := range []string{"llmfi fleet", "Serving", "in flight", "request", ctx.Trace[:8]} {
		if !strings.Contains(raw, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}

	post, err := http.Post(ts.URL+"/debug/fleet", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/fleet: status %d, want 405", post.StatusCode)
	}
}
