package obs

import "time"

// The observability plane's only wall-clock access. Spans carry
// timestamps and durations for humans and dashboards; none of these
// values flow back into sampling, decoding, or classification, so the
// clock cannot perturb campaign results. Keeping the reads behind one
// seam lets the determinism analyzer cover the rest of the package.

//llmfi:allow determinism telemetry-only clock seam; span timings never reach trial outcomes
func now() time.Time { return time.Now() }

//llmfi:allow determinism telemetry-only clock seam; span timings never reach trial outcomes
func since(t time.Time) time.Duration { return time.Since(t) }
