// Package obs is the fleet observability plane: lightweight end-to-end
// spans correlated by trace ID across the serving engine, the campaign
// runner, and the coordinator/worker fabric; W3C-style trace-context
// propagation over the existing /api/v1 wire; a coordinator-side
// metrics fan-in that scrapes worker /metrics endpoints and re-exports
// aggregated llmfi_fleet_* series; and a zero-dependency live HTML
// dashboard.
//
// The plane is observational by construction, the same contract the
// propagation-trace layer (internal/trace) and telemetry registry obey:
// nothing recorded here may reach a trial outcome, a Result, or a
// checkpoint. Span identifiers derive from a process-local generator
// seeded once from crypto/rand — never from campaign randomness — and
// all wall-clock reads funnel through the package clock seam, so the
// determinism analyzer (internal/lint) covers this package with exactly
// one sanctioned timing site. Golden-equivalence tests in internal/core
// and internal/serve prove campaign results and served tokens are
// bit-identical with recording enabled.
//
// Spans export as JSON Lines with their own versioned schema
// (SchemaVersion), a sibling of the propagation-trace schema from
// internal/trace; readers refuse records from a different schema rather
// than misinterpreting them.
package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// SchemaVersion identifies the span record layout of the JSONL export.
// Bump on any incompatible field change so downstream analysis can
// dispatch — same discipline as trace.SchemaVersion.
const SchemaVersion = 1

// Attr is one typed span attribute. Exactly one of Str / Num / Int
// carries the value; the zero fields are omitted from JSON.
type Attr struct {
	Key string  `json:"key"`
	Str string  `json:"str,omitempty"`
	Num float64 `json:"num,omitempty"`
	Int int64   `json:"int,omitempty"`
}

// Str builds a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, Str: val} }

// Num builds a float attribute.
func Num(key string, val float64) Attr { return Attr{Key: key, Num: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Int: val} }

// Span is one timed segment of a request, trial, or lease. Spans with
// the same Trace belong to one end-to-end story — a generate request
// through the serving engine, or a campaign trial from the coordinator's
// lease grant through the worker that executed it.
type Span struct {
	Schema int `json:"schema"`
	// Trace is the 32-hex-digit trace ID shared by every span of one
	// end-to-end story; ID is this span's own 16-hex-digit identity and
	// Parent the span it nests under ("" for a root).
	Trace  string `json:"trace"`
	ID     string `json:"span"`
	Parent string `json:"parent,omitempty"`
	// Service names the process role that recorded the span (serve,
	// campaign, coordinator, worker).
	Service string `json:"service"`
	// Name is the phase or operation (request, queue_wait, decode,
	// lease, trial, ...).
	Name string `json:"name"`
	// Start is the span's wall-clock start in Unix nanoseconds; Seconds
	// its duration. Both are telemetry — they never feed back into any
	// campaign computation.
	Start   int64   `json:"start_unix_ns"`
	Seconds float64 `json:"seconds"`
	// Count carries the number of underlying operations when the span
	// aggregates them (e.g. decode steps), mirroring trace.Span.Count.
	Count int    `json:"count,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// idGen is the process-local span/trace ID generator: a splitmix64
// stream over an atomic counter, offset by a once-per-process
// crypto/rand base so concurrent llmfi processes never collide. It is
// deliberately independent of the campaign's prng streams — consuming
// campaign randomness for observability would shift every downstream
// sample and break bit-identity.
var idGen struct {
	base uint64
	ctr  atomic.Uint64
}

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idGen.base = binary.LittleEndian.Uint64(b[:])
	}
}

// nextID draws one 64-bit identifier.
func nextID() uint64 {
	x := idGen.base + idGen.ctr.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 { // the all-zero ID is invalid in trace context
		x = 1
	}
	return x
}

// newTraceID returns a fresh 32-hex-digit trace ID.
func newTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], nextID())
	binary.BigEndian.PutUint64(b[8:], nextID())
	return hex.EncodeToString(b[:])
}

// newSpanID returns a fresh 16-hex-digit span ID.
func newSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], nextID())
	return hex.EncodeToString(b[:])
}
