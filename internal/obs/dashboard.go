package obs

import (
	"html/template"
	"net/http"
)

// DashboardSection is one key/value block on the dashboard.
type DashboardSection struct {
	Title string
	Rows  [][2]string
}

// DashboardData is everything the /debug/fleet page renders. Metrics is
// a preformatted Prometheus text block; Spans are the most recent
// recorded spans, newest first.
type DashboardData struct {
	Title    string
	Version  string
	Sections []DashboardSection
	Metrics  string
	Spans    []Span
}

// dashboardTmpl is a zero-dependency live view: plain html/template,
// inline CSS, meta-refresh instead of JavaScript, so it works from curl
// or any browser with nothing to install.
var dashboardTmpl = template.Must(template.New("fleet").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>{{.Title}}</title>
<style>
body { font-family: ui-monospace, monospace; margin: 1.5rem; background: #101418; color: #d8dee6; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.4rem; color: #8fb4d8; }
table { border-collapse: collapse; }
td, th { padding: 2px 10px; border-bottom: 1px solid #2a3240; text-align: left; font-size: 0.85rem; }
th { color: #8fb4d8; }
pre { background: #161c24; padding: 0.8rem; overflow-x: auto; font-size: 0.8rem; }
.ver { color: #6a7684; font-size: 0.8rem; }
.trace { color: #9a86c8; }
</style>
</head>
<body>
<h1>{{.Title}} <span class="ver">llmfi {{.Version}} · auto-refresh 2s</span></h1>
{{range .Sections}}<h2>{{.Title}}</h2>
<table>{{range .Rows}}<tr><td>{{index . 0}}</td><td>{{index . 1}}</td></tr>
{{end}}</table>
{{end}}{{if .Spans}}<h2>recent spans (newest first)</h2>
<table>
<tr><th>trace</th><th>service</th><th>name</th><th>seconds</th><th>count</th><th>attrs</th></tr>
{{range .Spans}}<tr><td class="trace">{{.Trace}}</td><td>{{.Service}}</td><td>{{.Name}}</td><td>{{printf "%.6f" .Seconds}}</td><td>{{if .Count}}{{.Count}}{{end}}</td><td>{{range .Attrs}}{{.Key}}={{if .Str}}{{.Str}}{{else if .Int}}{{.Int}}{{else}}{{.Num}}{{end}} {{end}}</td></tr>
{{end}}</table>
{{end}}{{if .Metrics}}<h2>metrics</h2>
<pre>{{.Metrics}}</pre>
{{end}}</body>
</html>
`))

// WriteDashboardHTML renders the dashboard page.
func WriteDashboardHTML(w http.ResponseWriter, d DashboardData) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	dashboardTmpl.Execute(w, d)
}

// DashboardHandler serves a live dashboard, gathering fresh data per
// request via fn.
func DashboardHandler(fn func() DashboardData) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			// The dashboard is a browser-facing HTML surface, not part
			// of the JSON API; plaintext 405 is the right shape here.
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed) //llmfi:allow wireschema HTML dashboard surface, not a JSON API endpoint
			return
		}
		WriteDashboardHTML(w, fn())
	}
}
