GO ?= go

.PHONY: check fmt vet build test race bench

## check: the full CI gate — formatting, vet, build, tests, race detector.
check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the campaign throughput benchmarks (Figure reproductions live
## in bench_test.go at the repo root).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
