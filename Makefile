GO ?= go

.PHONY: check fmt vet lint build test race bench fuzz cover

## check: the full CI gate — formatting, vet, invariant lint, build,
## tests, race detector.
check: fmt vet lint build test race

fmt:
	@out=$$(gofmt -s -l .); if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

## lint: the repo's invariant analyzers (cmd/llmfi-vet): determinism,
## hook purity, copy-on-write weight discipline, float64 checksum math,
## context-first cancellation, lock discipline (guardedby), atomic
## access consistency (atomicmix), goroutine lifecycle (golife), and
## wire-schema hygiene (wireschema). Suppress individual findings with
## //llmfi:allow <analyzer> <reason>; audit the suppression budget with
## `go run ./cmd/llmfi-vet -suppressions ./...`.
lint:
	$(GO) run ./cmd/llmfi-vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	GORACE=halt_on_error=1 $(GO) test -race -count=1 \
		-run '^Test(Runner|Trace|Resume|Checkpoint|Batched)' ./internal/core/
	GORACE=halt_on_error=1 $(GO) test -race -count=1 \
		-run '^Test(Serve|Handler|Loadgen)' ./internal/serve/...
	GORACE=halt_on_error=1 $(GO) test -race -count=1 \
		-run '^Test(FanIn|Recorder|SpanWriter|FleetTrace|LeaseTrace)' \
		./internal/fabric/ ./internal/obs/

## bench: the campaign throughput benchmarks (Figure reproductions live
## in bench_test.go at the repo root), plus the machine-readable runtime
## comparisons: seed path vs prefix engine vs streaming runner
## (BENCH_2.json), ABFT off vs site-only vs all-layer checking
## (BENCH_3.json), tracing off vs sampled vs every-trial probes
## (BENCH_4.json), serial vs continuous-batching decode at widths
## 8/16/32 (BENCH_5.json), serving-under-faults latency/SLO/detection
## with ABFT off/site/all over 8 request streams (BENCH_6.json), and the
## observability plane's overhead — spans off vs sampled vs full on both
## the campaign and serving planes (BENCH_7.json; sampled must stay
## within 5%). Works from a fresh clone: prior BENCH_*.json files are
## not required, and the final dump tolerates any that are missing.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	BENCH_JSON_OUT=$(CURDIR)/BENCH_2.json $(GO) test -run '^TestEmitBenchJSON$$' -v ./internal/core/
	BENCH3_JSON_OUT=$(CURDIR)/BENCH_3.json $(GO) test -run '^TestEmitABFTBenchJSON$$' -v ./internal/core/
	BENCH4_JSON_OUT=$(CURDIR)/BENCH_4.json $(GO) test -run '^TestEmitTraceBenchJSON$$' -v ./internal/core/
	BENCH5_JSON_OUT=$(CURDIR)/BENCH_5.json $(GO) test -run '^TestEmitBatchBenchJSON$$' -v ./internal/core/
	BENCH6_JSON_OUT=$(CURDIR)/BENCH_6.json $(GO) test -run '^TestEmitServeBenchJSON$$' -v ./internal/serve/
	BENCH7_JSON_OUT=$(CURDIR)/BENCH_7.json $(GO) test -run '^TestEmitObsBenchJSON$$' -v ./internal/serve/
	@for f in $(CURDIR)/BENCH_*.json; do [ -f "$$f" ] && cat "$$f" || true; done

## fuzz: short smoke sessions of the fuzz targets (also run in CI).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzHalfRoundTrip$$' -fuzztime 10s ./internal/numerics/
	$(GO) test -run '^$$' -fuzz '^FuzzFlipBits$$' -fuzztime 10s ./internal/faults/
	$(GO) test -run '^$$' -fuzz '^FuzzGenerateRequest$$' -fuzztime 10s ./internal/serve/

## cover: the detection-layer coverage gate enforced by CI — the ABFT and
## mitigation packages must stay above 85% combined.
cover:
	$(GO) test -coverprofile=$(CURDIR)/coverage.out \
		-coverpkg=./internal/abft,./internal/mitigate \
		./internal/abft ./internal/mitigate
	@total=$$($(GO) tool cover -func=$(CURDIR)/coverage.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	echo "abft+mitigate combined coverage: $$total%"; \
	awk -v t="$$total" 'BEGIN { exit (t+0 >= 85.0) ? 0 : 1 }' \
		|| { echo "coverage $$total% below the 85% gate"; exit 1; }
