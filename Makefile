GO ?= go

.PHONY: check fmt vet build test race bench

## check: the full CI gate — formatting, vet, build, tests, race detector.
check: fmt vet build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the campaign throughput benchmarks (Figure reproductions live
## in bench_test.go at the repo root), plus the machine-readable
## three-way runtime comparison (seed path vs prefix engine vs
## streaming runner) written to BENCH_2.json.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	BENCH_JSON_OUT=$(CURDIR)/BENCH_2.json $(GO) test -run '^TestEmitBenchJSON$$' -v ./internal/core/
	@cat $(CURDIR)/BENCH_2.json
